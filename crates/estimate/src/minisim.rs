//! Tiny seeded per-link slotted simulations: the estimator's fallback
//! when a point is *not* stationary — the traffic matrix rotates
//! mid-run (shuffle stages, churning hotspots) or a fault plan is armed
//! (dark links, misfired slots, stalled decisions).
//!
//! Each destination link is simulated independently at epoch
//! granularity: arrivals follow the stage matrix active at each step
//! (with small seeded jitter standing in for Poisson noise), service is
//! the link's modeled EPS/OCS capacity masked by the fault processes,
//! and waits are read off the fluid backlog. All randomness forks off
//! the point's seed in a fixed order on one thread, so the result is a
//! pure function of `(problem, seed)` — the same determinism contract
//! the exact tier honors.

use xds_sim::SimRng;
use xds_switch::Site;
use xds_traffic::TrafficMatrix;

use crate::model::{EstimateProblem, LinkOutcome, MatrixSummary, ScheduleModel};
use crate::profile::SizeProfile;

/// Upper bound on simulated steps per link, so kilofabric points with
/// tiny epochs stay milliseconds-cheap. When capped, each step simply
/// covers more simulated time.
const MAX_STEPS: usize = 8192;

/// Relative width of the per-step arrival jitter (±10 %).
const ARRIVAL_JITTER: f64 = 0.1;

/// Solves every destination link by slotted mini-sim. Returns the
/// per-link outcomes plus the simulated nanoseconds during which any
/// port was dark to injected faults (the degraded-mode ledger).
pub(crate) fn solve_links(
    p: &EstimateProblem,
    sched: &ScheduleModel,
    profile: &SizeProfile,
    summary: &MatrixSummary,
    agg_bps: f64,
    mut rng: SimRng,
) -> (Vec<LinkOutcome>, u64) {
    let n = p.cfg.n_ports;
    let horizon_ns = p.duration.as_nanos().max(1);
    let epoch_ns = p.cfg.epoch.as_nanos().max(1);
    let steps = ((horizon_ns / epoch_ns).max(1) as usize).min(MAX_STEPS);
    let step_ns = horizon_ns as f64 / steps as f64;
    let step_s = step_ns * 1e-9;
    // Steps before the first schedule installs have no OCS capacity
    // (same installation transient the closed-form path models).
    let first_ocs_step = (((1.0 - sched.active) * steps as f64).ceil() as usize).min(steps);

    let plan = p.faults.clone().unwrap_or_default();

    // Per-port dark masks from the link failure + repair process. Drawn
    // port-major from a dedicated fork, so the mask is independent of
    // everything downstream.
    let mut dark = vec![false; n * steps];
    let mut degraded = vec![false; steps];
    if let Some(link) = &plan.link {
        let mut link_rng = rng.fork();
        for port in 0..n {
            let mut prng = link_rng.fork();
            let mut t = prng.exp(link.mean_up.as_nanos().max(1) as f64);
            while t < horizon_ns as f64 {
                let down = prng.exp(link.mean_down.as_nanos().max(1) as f64);
                let s0 = (t / step_ns) as usize;
                let s1 = (((t + down) / step_ns) as usize).min(steps - 1);
                for s in s0..=s1.max(s0) {
                    if s < steps {
                        dark[port * steps + s] = true;
                        degraded[s] = true;
                    }
                }
                t += down + prng.exp(link.mean_up.as_nanos().max(1) as f64);
            }
        }
    }

    // Per-step slot capacity factor from the control-plane fault
    // processes (one control plane: global draws, shared by all links).
    let mut slot_factor = vec![1.0f64; steps];
    {
        let mut ctrl_rng = rng.fork();
        if let Some(m) = &plan.misfire {
            for f in slot_factor.iter_mut() {
                if ctrl_rng.bool(m.prob) {
                    *f *= if ctrl_rng.bool(m.stale_frac) {
                        // The stale permutation stays up: roughly half
                        // the slot's useful capacity for shifting demand.
                        0.5
                    } else {
                        1.0 - (m.late.as_nanos() as f64 / epoch_ns as f64).min(1.0)
                    };
                }
            }
        }
        if let Some(st) = &plan.stall {
            let mut coasting = 0u32;
            for f in slot_factor.iter_mut() {
                if coasting > 0 {
                    // Coasting on the previous schedule: fine for steady
                    // demand, lossy for rotating demand.
                    *f *= 0.7;
                    coasting -= 1;
                } else if ctrl_rng.bool(st.prob) {
                    coasting = st.epochs;
                }
            }
        }
    }

    // Column demand fractions per rotation stage.
    let stage_cols: Vec<Vec<f64>> = match &p.cycle {
        Some((_, stages)) => stages.iter().map(TrafficMatrix::col_sums).collect(),
        None => vec![p.matrix.col_sums()],
    };
    let period_ns = p
        .cycle
        .as_ref()
        .map(|(per, _)| per.as_nanos().max(1) as f64)
        .unwrap_or(f64::INFINITY);
    let stage_at = |s: usize| -> usize {
        if stage_cols.len() == 1 {
            0
        } else {
            ((s as f64 * step_ns / period_ns) as usize) % stage_cols.len()
        }
    };

    let site = p.cfg.placement.buffering_site();
    let eps_bps = p.cfg.eps_rate.bytes_per_sec() as f64;
    let eps_quantum_ns = p.cfg.eps_rate.tx_time(p.cfg.mtu as u64).as_nanos() as f64;
    // Unlike the closed form, the mini-sim models the installation
    // transient in the time domain (`first_ocs_step`), so the slot rate
    // here carries only duty and per-destination coverage.
    let mu_ocs = p.cfg.line_rate.bytes_per_sec() as f64 * sched.duty;
    let half_epoch_ns = epoch_ns as f64 * 0.5;
    let eps_share = if p.eps_only {
        1.0
    } else {
        profile.eps_byte_share
    };

    let mut out = Vec::with_capacity(n);
    for d in 0..n {
        let mut lrng = rng.fork();
        let mu_d = mu_ocs * summary.cover(d, p.oblivious);
        let voq_cap = p.cfg.voq_capacity as f64 * summary.in_deg[d] as f64;
        let mut o = LinkOutcome::default();
        let mut b_eps = 0.0f64;
        let mut b_ocs = 0.0f64;
        let mut eps_wait_acc = 0.0f64;
        let mut eps_wait_w = 0.0f64;
        let mut ocs_wait_acc = 0.0f64;
        let mut ocs_wait_w = 0.0f64;
        for s in 0..steps {
            let lambda = agg_bps * stage_cols[stage_at(s)][d];
            let jitter = 1.0 + ARRIVAL_JITTER * (2.0 * lrng.f64() - 1.0);
            let arr = lambda * step_s * jitter;
            o.arrival_bytes += arr;
            let mut arr_eps = arr * eps_share;
            let mut arr_ocs = arr - arr_eps;
            let port_dark = dark[d * steps + s];
            if port_dark && arr_ocs > 0.0 {
                match site {
                    // Fast mode diverts granted bursts onto the EPS…
                    Site::Switch => {
                        o.failover_bytes += arr_ocs;
                        arr_eps += arr_ocs;
                    }
                    // …slow mode loses them to the dark circuit.
                    Site::Host => o.dark_drop_bytes += arr_ocs,
                }
                arr_ocs = 0.0;
            }
            b_eps += arr_eps;
            b_ocs += arr_ocs;
            if arr_eps > 0.0 {
                let w = eps_quantum_ns + b_eps / eps_bps.max(1.0) * 1e9;
                eps_wait_acc += w * arr_eps;
                eps_wait_w += arr_eps;
            }
            if arr_ocs > 0.0 {
                let w = half_epoch_ns + b_ocs / mu_d.max(1.0) * 1e9;
                ocs_wait_acc += w * arr_ocs;
                ocs_wait_w += arr_ocs;
            }
            let served_eps = b_eps.min(eps_bps * step_s);
            b_eps -= served_eps;
            o.eps_delivered += served_eps;
            let ocs_cap = if port_dark || s < first_ocs_step {
                0.0
            } else {
                mu_d * step_s * slot_factor[s]
            };
            let served_ocs = b_ocs.min(ocs_cap);
            b_ocs -= served_ocs;
            o.ocs_delivered += served_ocs;
            if b_eps > p.cfg.eps_buffer as f64 {
                o.eps_drop_bytes += b_eps - p.cfg.eps_buffer as f64;
                b_eps = p.cfg.eps_buffer as f64;
            }
            if site == Site::Switch && b_ocs > voq_cap {
                o.voq_drop_bytes += b_ocs - voq_cap;
                b_ocs = voq_cap;
            }
            o.backlog_bytes = o.backlog_bytes.max(b_eps + b_ocs);
        }
        o.eps_wait_ns = if eps_wait_w > 0.0 {
            eps_wait_acc / eps_wait_w
        } else {
            0.0
        };
        o.ocs_wait_ns = if ocs_wait_w > 0.0 {
            ocs_wait_acc / ocs_wait_w
        } else {
            0.0
        };
        out.push(o);
    }

    let degraded_ns = (degraded.iter().filter(|&&d| d).count() as f64 * step_ns).round() as u64;
    (out, degraded_ns.min(horizon_ns))
}

#[cfg(test)]
mod tests {
    use super::*;
    use xds_core::config::NodeConfig;
    use xds_core::fault::FaultPlan;
    use xds_hw::{HwAlgo, HwSchedulerModel};
    use xds_sim::SimDuration;
    use xds_traffic::FlowSizeDist;

    fn problem(n: usize) -> EstimateProblem {
        let cfg = NodeConfig::fast(
            n,
            SimDuration::from_micros(1),
            HwSchedulerModel::netfpga_sume(HwAlgo::Tdma),
        );
        EstimateProblem {
            cfg,
            matrix: TrafficMatrix::uniform(n),
            cycle: None,
            sizes: FlowSizeDist::Fixed(150_000),
            load: 0.5,
            bulk_threshold: 100_000,
            apps: Vec::new(),
            duration: SimDuration::from_millis(2),
            seed: 5,
            faults: Some(FaultPlan::flaky_links()),
            scheduler_name: "tdma".into(),
            entries_per_epoch: 1,
            eps_only: false,
            oblivious: true,
            measured_deliveries: true,
            measured_buffers: true,
        }
    }

    fn run(p: &EstimateProblem) -> (Vec<LinkOutcome>, u64) {
        let mut root = SimRng::new(p.seed);
        let _ = root.fork();
        let _ = root.fork();
        let fault_rng = root.fork();
        let profile = SizeProfile::sample(&p.sizes, p.bulk_threshold, &mut SimRng::new(p.seed));
        let sched = ScheduleModel::derive(p);
        let summary = MatrixSummary::scan(&p.matrix);
        let agg = p.load * p.cfg.n_ports as f64 * p.cfg.line_rate.bytes_per_sec() as f64;
        solve_links(p, &sched, &profile, &summary, agg, fault_rng)
    }

    #[test]
    fn flaky_links_open_degraded_time_and_divert_bytes() {
        let p = problem(8);
        let (links, degraded_ns) = run(&p);
        assert!(degraded_ns > 0, "flaky preset must go dark sometimes");
        assert!(degraded_ns <= p.duration.as_nanos());
        let failover: f64 = links.iter().map(|l| l.failover_bytes).sum();
        assert!(failover > 0.0, "fast mode diverts bulk onto the EPS");
        let delivered: f64 = links
            .iter()
            .map(|l| l.eps_delivered + l.ocs_delivered)
            .sum();
        assert!(delivered > 0.0);
    }

    #[test]
    fn mini_sim_is_deterministic() {
        let p = problem(8);
        let (a, da) = run(&p);
        let (b, db) = run(&p);
        assert_eq!(da, db);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.arrival_bytes.to_bits(), y.arrival_bytes.to_bits());
            assert_eq!(x.ocs_delivered.to_bits(), y.ocs_delivered.to_bits());
            assert_eq!(x.ocs_wait_ns.to_bits(), y.ocs_wait_ns.to_bits());
        }
    }

    #[test]
    fn fault_free_cycle_has_no_degraded_time() {
        let mut p = problem(8);
        p.faults = None;
        p.cycle = Some((
            SimDuration::from_micros(100),
            TrafficMatrix::shuffle_stages(8),
        ));
        let (links, degraded_ns) = run(&p);
        assert_eq!(degraded_ns, 0);
        assert!(links.iter().all(|l| l.failover_bytes == 0.0));
        assert!(links.iter().any(|l| l.ocs_delivered > 0.0));
    }
}
