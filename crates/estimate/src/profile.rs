//! Deterministic flow-size profiling: the per-class demand shares every
//! mini-problem needs, sampled once per point from a seeded stream.
//!
//! The exact simulator learns these shares implicitly, one sampled flow
//! at a time. The estimate tier needs them up front — how many bytes
//! ride the EPS (below the bulk threshold) vs the OCS, and how each
//! [`SizeClass`] splits by count and by bytes — so it draws a fixed
//! number of sizes from the same distribution family and summarizes.
//! The draw count is a constant and the RNG is a fork of the point's
//! seed, so the profile is a pure function of `(spec, seed)`.

use xds_metrics::SizeClass;
use xds_sim::SimRng;
use xds_traffic::FlowSizeDist;

/// Samples drawn per profile. Enough that empirical CDFs (websearch,
/// datamining) stabilize their byte shares; cheap enough to be noise in
/// a point's cost.
const PROFILE_SAMPLES: usize = 4096;

/// Per-[`SizeClass`] demand summary.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClassProfile {
    /// Fraction of flows in this class.
    pub count_share: f64,
    /// Fraction of bytes in this class.
    pub byte_share: f64,
    /// Mean flow size within the class (bytes); 0 when empty.
    pub mean_bytes: f64,
}

/// The sampled size-distribution summary of one scenario point.
#[derive(Debug, Clone)]
pub struct SizeProfile {
    /// Analytic mean flow size (bytes) — the same number the exact
    /// tier's flow generator derives its arrival rate from, so both
    /// tiers agree on offered flows by construction.
    pub mean_bytes: f64,
    /// Fraction of background bytes below the bulk threshold (EPS path).
    pub eps_byte_share: f64,
    /// Per-class splits, indexed by [`SizeClass::ALL`] order.
    pub class: [ClassProfile; 3],
}

impl SizeProfile {
    /// Profiles `sizes` against `bulk_threshold` with draws from `rng`.
    pub fn sample(sizes: &FlowSizeDist, bulk_threshold: u64, rng: &mut SimRng) -> SizeProfile {
        let mut count = [0u64; 3];
        let mut bytes = [0f64; 3];
        let mut eps_bytes = 0f64;
        let mut total_bytes = 0f64;
        for _ in 0..PROFILE_SAMPLES {
            let b = sizes.sample_bytes(rng);
            let c = class_index(SizeClass::of(b));
            count[c] += 1;
            bytes[c] += b as f64;
            total_bytes += b as f64;
            if b < bulk_threshold {
                eps_bytes += b as f64;
            }
        }
        let mut class = [ClassProfile::default(); 3];
        for c in 0..3 {
            class[c] = ClassProfile {
                count_share: count[c] as f64 / PROFILE_SAMPLES as f64,
                byte_share: if total_bytes > 0.0 {
                    bytes[c] / total_bytes
                } else {
                    0.0
                },
                mean_bytes: if count[c] > 0 {
                    bytes[c] / count[c] as f64
                } else {
                    0.0
                },
            };
        }
        SizeProfile {
            mean_bytes: sizes.mean_bytes().max(1.0),
            eps_byte_share: if total_bytes > 0.0 {
                eps_bytes / total_bytes
            } else {
                0.0
            },
            class,
        }
    }

    /// The class summary for `class`.
    pub fn of(&self, class: SizeClass) -> &ClassProfile {
        &self.class[class_index(class)]
    }
}

pub(crate) fn class_index(class: SizeClass) -> usize {
    match class {
        SizeClass::Mice => 0,
        SizeClass::Medium => 1,
        SizeClass::Elephant => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_sizes_collapse_to_one_class() {
        let mut rng = SimRng::new(7);
        let p = SizeProfile::sample(&FlowSizeDist::Fixed(150_000), 100_000, &mut rng);
        // 150 kB flows: all medium, all above the bulk threshold.
        assert!((p.of(SizeClass::Medium).count_share - 1.0).abs() < 1e-12);
        assert_eq!(p.eps_byte_share, 0.0);
        assert_eq!(p.mean_bytes, 150_000.0);
    }

    #[test]
    fn profile_is_a_pure_function_of_the_seed() {
        let a = SizeProfile::sample(&FlowSizeDist::WebSearch, 100_000, &mut SimRng::new(3));
        let b = SizeProfile::sample(&FlowSizeDist::WebSearch, 100_000, &mut SimRng::new(3));
        assert_eq!(a.eps_byte_share, b.eps_byte_share);
        assert_eq!(
            a.of(SizeClass::Mice).byte_share,
            b.of(SizeClass::Mice).byte_share
        );
        let c = SizeProfile::sample(&FlowSizeDist::WebSearch, 100_000, &mut SimRng::new(4));
        assert_ne!(a.eps_byte_share, c.eps_byte_share, "seed moves the draw");
    }

    #[test]
    fn websearch_mixes_classes_and_shares_sum_to_one() {
        let p = SizeProfile::sample(&FlowSizeDist::WebSearch, 100_000, &mut SimRng::new(11));
        let counts: f64 = p.class.iter().map(|c| c.count_share).sum();
        let bytes: f64 = p.class.iter().map(|c| c.byte_share).sum();
        assert!((counts - 1.0).abs() < 1e-9);
        assert!((bytes - 1.0).abs() < 1e-9);
        assert!(
            p.of(SizeClass::Mice).count_share > 0.0,
            "websearch has mice"
        );
        assert!(p.eps_byte_share > 0.0 && p.eps_byte_share < 1.0);
    }
}
