//! The decomposed estimator: a scenario point as `n` independent
//! per-destination-link mini-problems, each solved in closed form
//! (stationary traffic) or by a tiny seeded slotted simulation (rotating
//! or faulted traffic), then composed into a [`RunReport`].
//!
//! ## Decomposition
//!
//! The fabric's congestion is destination-dominated: every byte toward
//! port `d` must leave through `d`'s line-rate link (OCS path) or `d`'s
//! undersized EPS output queue, so per-destination byte rates determine
//! stability, waits and residual backlog to first order. Each
//! mini-problem `d` therefore sees:
//!
//! * an arrival rate `λ_d = R · colsum(d)` split EPS/OCS by the sampled
//!   [`SizeProfile`]'s bulk-threshold byte share,
//! * an EPS server at `eps_rate` (M/M/1-style waits on packet service),
//! * an OCS server at `line_rate · duty · active · cover_d`, where
//!   `duty` is the installed epoch's non-dark fraction, `active` the
//!   fraction of the horizon during which any schedule exists at all
//!   (the first demand-bearing schedule needs one epoch cadence of
//!   observed demand plus one scheduler decision, and the cadence itself
//!   stretches to the decision latency — at kilofabric sizes that
//!   exceeds a short horizon, and then the exact tier delivers zero OCS
//!   bytes), and `cover_d` the destination's served-demand fraction
//!   (1 for demand-aware schedules, `in_degree/n` for oblivious TDMA
//!   rotation); bulk waits are epoch-dominated (`epoch/2 · 1/(1-ρ)`).
//!
//! Cross-pair coupling (matching conflicts, head-of-line blocking,
//! estimator lag) is deliberately ignored — that is the fidelity trade,
//! and `sweep validate-estimates` measures exactly how much it costs.

use xds_core::config::NodeConfig;
use xds_core::fault::FaultPlan;
use xds_core::report::RunReport;
use xds_sim::{SimDuration, SimRng};
use xds_switch::Site;
use xds_traffic::{CbrApp, FlowSizeDist, TrafficMatrix};

use crate::compose;
use crate::minisim;
use crate::profile::SizeProfile;

/// Demand below this fraction of the matrix total is treated as zero
/// when counting active pairs and demand degrees.
const ACTIVE_EPS: f64 = 1e-9;

/// Queueing formulas blow up at ρ→1; beyond this utilization the model
/// switches to the overload branch (service-bound delivery, linearly
/// growing backlog).
const RHO_STABLE_MAX: f64 = 0.97;

/// One scenario point, translated for the estimate tier. Everything the
/// decomposition needs and nothing the exact runtime owns — the
/// `xds-scenario` crate builds this from a `ScenarioSpec` with the same
/// seed derivation the exact tier uses.
#[derive(Debug, Clone)]
pub struct EstimateProblem {
    /// Fabric configuration (rates, epoch, budgets, placement).
    pub cfg: NodeConfig,
    /// Initial traffic matrix.
    pub matrix: TrafficMatrix,
    /// Mid-run matrix rotation (period, stages), if the pattern drives
    /// one — rotating points take the mini-sim path.
    pub cycle: Option<(SimDuration, Vec<TrafficMatrix>)>,
    /// Flow-size distribution of the background flows.
    pub sizes: FlowSizeDist,
    /// Effective aggregate load (fraction of `n · line_rate`), after any
    /// imbalance normalization.
    pub load: f64,
    /// EPS/OCS flow-size boundary (bytes).
    pub bulk_threshold: u64,
    /// Interactive CBR apps layered over the flows.
    pub apps: Vec<CbrApp>,
    /// Simulated horizon.
    pub duration: SimDuration,
    /// Master seed (every estimator stream forks off this).
    pub seed: u64,
    /// Armed fault plan, if any — faulted points take the mini-sim path.
    pub faults: Option<FaultPlan>,
    /// Scheduler label carried into the report.
    pub scheduler_name: String,
    /// OCS configurations one installed schedule spends per epoch: 0 for
    /// the pure packet switch, 1 for matching schedulers (one matching
    /// per epoch, iSLIP/PIM/TDMA-style), the permutation budget for
    /// decomposition schedulers (BvN, Solstice).
    pub entries_per_epoch: u64,
    /// Pure packet-switch baseline: no circuits at all.
    pub eps_only: bool,
    /// Demand-oblivious rotation (TDMA): coverage spreads over all `n`
    /// destinations regardless of demand.
    pub oblivious: bool,
    /// Whether delivery-derived observables count as measured (full /
    /// timeseries profiles; `false` renders them as null, like lean
    /// exact rows).
    pub measured_deliveries: bool,
    /// Whether buffer peaks count as measured.
    pub measured_buffers: bool,
}

/// The schedule-level constants shared by every mini-problem of a point.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ScheduleModel {
    /// OCS configurations one installed schedule spends per epoch.
    pub entries: u64,
    /// Non-dark fraction of an installed cadence period (coasting on a
    /// stale schedule pays no reconfiguration, so a slow decision
    /// dilutes the dark fraction).
    pub duty: f64,
    /// Fraction of the horizon during which a schedule is installed at
    /// all. Zero when one cadence period plus one decision latency
    /// exceeds the horizon — the exact tier then never brings a circuit
    /// up, and neither does the estimate.
    pub active: f64,
    /// Effective epoch-start cadence in ns: the exact tier schedules the
    /// next epoch at `max(epoch, decision latency)`, so slow schedulers
    /// stretch the decision cadence rather than pipeline behind it.
    pub cadence_ns: u64,
}

impl ScheduleModel {
    /// Derives the schedule model from the scheduler's per-epoch entry
    /// budget and its decision-latency timing model.
    pub(crate) fn derive(p: &EstimateProblem) -> ScheduleModel {
        let epoch_ns = p.cfg.epoch.as_nanos().max(1) as f64;
        let horizon_ns = p.duration.as_nanos().max(1) as f64;
        let decision_ns = p
            .cfg
            .placement
            .mean_decision_latency(p.cfg.n_ports)
            .as_nanos() as f64;
        let cadence_ns = epoch_ns.max(decision_ns);
        if p.eps_only || p.entries_per_epoch == 0 {
            return ScheduleModel {
                entries: 0,
                duty: 0.0,
                active: 0.0,
                cadence_ns: cadence_ns as u64,
            };
        }
        let entries = p
            .entries_per_epoch
            .clamp(1, p.cfg.max_entries.max(1) as u64);
        // The exact tier's first epoch observes an empty fabric and emits
        // an empty schedule; the first demand-bearing schedule is the one
        // computed at the second epoch start, and it applies one decision
        // latency later.
        let install_ns = cadence_ns + decision_ns;
        let active = ((horizon_ns - install_ns) / horizon_ns).clamp(0.0, 1.0);
        // One schedule (and its `entries` reconfigurations) per cadence
        // period: a decision slower than the epoch stretches the period
        // and dilutes the dark fraction accordingly.
        let dark = (entries as f64 * p.cfg.reconfig.as_nanos() as f64 / cadence_ns).min(1.0);
        ScheduleModel {
            entries,
            duty: 1.0 - dark,
            active,
            cadence_ns: cadence_ns as u64,
        }
    }
}

/// Per-destination demand structure, scanned once row-major: column
/// demand fractions and in-degrees in a single sequential pass over the
/// matrix (repeated per-destination column walks are cache-hostile at
/// kilofabric sizes and were the estimate tier's former hot spot).
pub(crate) struct MatrixSummary {
    /// Column sums (per-destination offered fraction).
    pub cols: Vec<f64>,
    /// Sources with nonzero demand toward each destination (floored at
    /// 1; sizes the switch-side VOQ capacity and the oblivious-rotation
    /// coverage).
    pub in_deg: Vec<u32>,
}

impl MatrixSummary {
    pub(crate) fn scan(matrix: &TrafficMatrix) -> MatrixSummary {
        let n = matrix.n();
        let mut cols = vec![0.0f64; n];
        let mut in_deg = vec![0u32; n];
        for row in matrix.rows() {
            for (d, &f) in row.iter().enumerate() {
                cols[d] += f;
                if f > ACTIVE_EPS {
                    in_deg[d] += 1;
                }
            }
        }
        for deg in &mut in_deg {
            *deg = (*deg).max(1);
        }
        MatrixSummary { cols, in_deg }
    }

    /// The fraction of destination `d`'s demand an installed schedule
    /// serves: demand-aware schedules keep every backlogged destination
    /// link busy (any permutation serves all ports at once), while an
    /// oblivious TDMA rotation connects each of the `n` sources in turn
    /// regardless of which ones have demand.
    pub(crate) fn cover(&self, d: usize, oblivious: bool) -> f64 {
        if oblivious {
            self.in_deg[d] as f64 / self.in_deg.len().max(1) as f64
        } else {
            1.0
        }
    }
}

/// The solved mini-problem of one destination link.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct LinkOutcome {
    /// Background bytes offered toward this destination over the horizon.
    pub arrival_bytes: f64,
    /// Bytes delivered on the EPS path.
    pub eps_delivered: f64,
    /// Bytes delivered on the OCS path.
    pub ocs_delivered: f64,
    /// Mean EPS queueing wait (ns) seen by packets toward this link.
    pub eps_wait_ns: f64,
    /// Mean OCS grant wait (ns) seen by bulk packets toward this link.
    pub ocs_wait_ns: f64,
    /// Peak granted-path backlog estimate (bytes) parked for this link.
    pub backlog_bytes: f64,
    /// Bytes dropped at full switch VOQs.
    pub voq_drop_bytes: f64,
    /// Bytes dropped at the full EPS output queue.
    pub eps_drop_bytes: f64,
    /// Bytes diverted from faulted circuits onto the EPS slow path.
    pub failover_bytes: f64,
    /// Bytes lost to dark circuits (fault drops).
    pub dark_drop_bytes: f64,
}

/// A stable/overload queue outcome: delivered bytes, mean wait,
/// residual backlog.
pub(crate) fn queue_outcome(
    lambda_bps: f64,
    mu_bps: f64,
    horizon_s: f64,
    wait_scale_ns: f64,
) -> (f64, f64, f64) {
    if lambda_bps <= 0.0 {
        return (0.0, 0.0, 0.0);
    }
    let offered = lambda_bps * horizon_s;
    if mu_bps <= 0.0 {
        // No server at all: everything offered is backlog.
        return (0.0, horizon_s * 0.5e9, offered);
    }
    let rho = lambda_bps / mu_bps;
    if rho < RHO_STABLE_MAX {
        // Stable: geometric-growth wait on the service quantum, residual
        // backlog by Little's law (bytes in system at the horizon).
        let wait_ns = wait_scale_ns / (1.0 - rho);
        let backlog = (lambda_bps * wait_ns * 1e-9).min(offered);
        (offered - backlog, wait_ns, backlog)
    } else {
        // Overloaded: the server bound delivers, the rest piles up; the
        // mean wait over the run grows with the undeliverable fraction.
        let delivered = (mu_bps * horizon_s).min(offered);
        let backlog = offered - delivered;
        let wait_ns = wait_scale_ns + 0.5 * horizon_s * 1e9 * (backlog / offered);
        (delivered, wait_ns, backlog)
    }
}

/// Solves one destination link in closed form.
#[allow(clippy::too_many_arguments)]
pub(crate) fn closed_form_link(
    p: &EstimateProblem,
    sched: &ScheduleModel,
    profile: &SizeProfile,
    agg_bps: f64,
    col_frac: f64,
    cover: f64,
    voq_cap_bytes: f64,
) -> LinkOutcome {
    let horizon_s = p.duration.as_secs_f64();
    let lambda = agg_bps * col_frac;
    let eps_share = if p.eps_only {
        1.0
    } else {
        profile.eps_byte_share
    };
    let l_eps = lambda * eps_share;
    let l_ocs = lambda - l_eps;

    let eps_bps = p.cfg.eps_rate.bytes_per_sec() as f64;
    let eps_quantum_ns = p.cfg.eps_rate.tx_time(p.cfg.mtu as u64).as_nanos() as f64;
    let (eps_del, eps_wait, eps_backlog) = queue_outcome(l_eps, eps_bps, horizon_s, eps_quantum_ns);
    // The EPS output queue is small; standing backlog beyond it drops.
    let eps_drop = (eps_backlog - p.cfg.eps_buffer as f64).max(0.0);

    // `active` folds the installation transient into the server rate:
    // the horizon-averaged OCS capacity is what a late-starting server
    // can move. When `active` is 0, the circuit never comes up and the
    // whole bulk stream backlogs — exactly the exact tier's behavior on
    // horizons shorter than the first scheduler decision.
    let mu_ocs = p.cfg.line_rate.bytes_per_sec() as f64 * sched.duty * sched.active * cover;
    let half_epoch_ns = p.cfg.epoch.as_nanos() as f64 * 0.5;
    let (ocs_del, ocs_wait, ocs_backlog) = queue_outcome(l_ocs, mu_ocs, horizon_s, half_epoch_ns);
    // Switch-side VOQs are finite; host memory is not (it is the thing
    // the paper measures).
    let (voq_drop, parked) = match p.cfg.placement.buffering_site() {
        Site::Switch => (
            (ocs_backlog - voq_cap_bytes).max(0.0),
            ocs_backlog.min(voq_cap_bytes),
        ),
        Site::Host => (0.0, ocs_backlog),
    };

    LinkOutcome {
        arrival_bytes: lambda * horizon_s,
        eps_delivered: eps_del,
        ocs_delivered: ocs_del,
        eps_wait_ns: eps_wait,
        ocs_wait_ns: ocs_wait,
        backlog_bytes: parked,
        voq_drop_bytes: voq_drop,
        eps_drop_bytes: eps_drop,
        failover_bytes: 0.0,
        dark_drop_bytes: 0.0,
    }
}

/// Solves the whole point: decompose, solve each link, compose.
pub(crate) fn solve(p: &EstimateProblem) -> RunReport {
    // Stream derivation mirrors the exact tier's discipline: one root,
    // deterministic fork order, no other entropy sources.
    let mut root = SimRng::new(p.seed);
    let mut profile_rng = root.fork();
    let mut decision_rng = root.fork();
    let fault_rng = root.fork();

    let profile = SizeProfile::sample(&p.sizes, p.bulk_threshold, &mut profile_rng);
    let sched = ScheduleModel::derive(p);
    let n = p.cfg.n_ports;
    let agg_bps = p.load * n as f64 * p.cfg.line_rate.bytes_per_sec() as f64;

    let summary = MatrixSummary::scan(&p.matrix);
    let (links, degraded_ns) =
        if p.cycle.is_some() || p.faults.as_ref().is_some_and(|f| f.is_active()) {
            minisim::solve_links(p, &sched, &profile, &summary, agg_bps, fault_rng)
        } else {
            let links = (0..n)
                .map(|d| {
                    let cap = p.cfg.voq_capacity as f64 * summary.in_deg[d] as f64;
                    closed_form_link(
                        p,
                        &sched,
                        &profile,
                        agg_bps,
                        summary.cols[d],
                        summary.cover(d, p.oblivious),
                        cap,
                    )
                })
                .collect();
            (links, 0)
        };

    compose::compose(
        p,
        &sched,
        &profile,
        agg_bps,
        &links,
        degraded_ns,
        &mut decision_rng,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use xds_core::config::NodeConfig;
    use xds_hw::{HwAlgo, HwSchedulerModel};

    fn problem(n: usize) -> EstimateProblem {
        let cfg = NodeConfig::fast(
            n,
            SimDuration::from_micros(1),
            HwSchedulerModel::netfpga_sume(HwAlgo::Islip { iterations: 3 }),
        );
        EstimateProblem {
            cfg,
            matrix: TrafficMatrix::uniform(n),
            cycle: None,
            sizes: FlowSizeDist::Fixed(150_000),
            load: 0.5,
            bulk_threshold: 100_000,
            apps: Vec::new(),
            duration: SimDuration::from_millis(2),
            seed: 1,
            faults: None,
            scheduler_name: "islip".into(),
            entries_per_epoch: 1,
            eps_only: false,
            oblivious: false,
            measured_deliveries: true,
            measured_buffers: true,
        }
    }

    #[test]
    fn matrix_summary_tracks_demand_structure() {
        let s = MatrixSummary::scan(&TrafficMatrix::incast(8, 7, 0));
        // Incast: 7 senders into port 0, nothing anywhere else.
        assert_eq!(s.in_deg[0], 7);
        assert!((s.cols[0] - 1.0).abs() < 1e-9);
        assert!(s.in_deg[1..].iter().all(|&d| d == 1), "floored at 1");
        assert!(s.cols[1..].iter().all(|&c| c == 0.0));
        // Demand-aware schedules cover everything; oblivious rotation
        // covers only the in-degree's share of the n slots.
        assert_eq!(s.cover(0, false), 1.0);
        assert!((s.cover(0, true) - 7.0 / 8.0).abs() < 1e-12);
        let u = MatrixSummary::scan(&TrafficMatrix::uniform(8));
        assert!(u.in_deg.iter().all(|&d| d == 7));
        // One fused pass must agree with the matrix's own column sums.
        assert_eq!(u.cols, TrafficMatrix::uniform(8).col_sums());
    }

    #[test]
    fn schedules_never_install_on_horizons_shorter_than_a_decision() {
        let mut p = problem(8);
        // One epoch of demand observation plus the decision latency
        // always exceeds a 1 ns horizon.
        p.duration = SimDuration::from_nanos(1);
        let sched = ScheduleModel::derive(&p);
        assert_eq!(sched.active, 0.0, "no schedule fits this horizon");
        let r = solve(&p);
        assert_eq!(
            r.delivered_ocs_bytes, 0,
            "no installed schedule, no circuit bytes"
        );
        assert_eq!(r.ocs.reconfigurations, 0);
        assert_eq!(r.ocs.dark_time, SimDuration::ZERO);
    }

    #[test]
    fn stable_queue_delivers_almost_everything() {
        let (del, wait, backlog) = queue_outcome(1e9, 4e9, 1e-3, 1000.0);
        assert!(del > 0.99 * 1e6, "delivered {del}");
        assert!(wait > 1000.0 && wait < 2000.0, "wait {wait}");
        assert!(backlog < 0.01 * 1e6);
    }

    #[test]
    fn overloaded_queue_is_service_bound() {
        let (del, wait, backlog) = queue_outcome(4e9, 1e9, 1e-3, 1000.0);
        assert!((del - 1e6).abs() < 1.0, "delivered {del}");
        assert!(backlog > 2.9e6, "backlog {backlog}");
        assert!(wait > 1e5, "overload waits are horizon-scale: {wait}");
    }

    #[test]
    fn estimate_report_is_deterministic_and_plausible() {
        let p = problem(8);
        let a = solve(&p);
        let b = solve(&p);
        assert_eq!(a.trace_json(), b.trace_json(), "byte-identical reruns");
        assert!(a.offered_bytes > 0);
        assert!(a.delivered_bytes() > 0);
        assert!(a.delivered_bytes() <= a.offered_bytes);
        assert!(
            a.ocs_duty_cycle() > 0.5,
            "10x reconfig epoch keeps duty high"
        );
        assert!(a.decisions > 0);
    }

    #[test]
    fn eps_only_routes_everything_through_the_packet_switch() {
        let mut p = problem(8);
        p.eps_only = true;
        p.scheduler_name = "eps_only".into();
        let r = solve(&p);
        assert_eq!(r.delivered_ocs_bytes, 0);
        assert_eq!(r.ocs.reconfigurations, 0);
        assert!(r.delivered_eps_bytes > 0);
        // No circuits means no reconfigurations and thus no dark time —
        // the duty-cycle column reads 1.0, exactly like the exact tier.
        assert_eq!(r.ocs.dark_time, SimDuration::ZERO);
    }

    #[test]
    fn heavier_load_never_delivers_fewer_bytes() {
        let mut lo = problem(8);
        lo.load = 0.2;
        let mut hi = problem(8);
        hi.load = 0.8;
        let a = solve(&lo);
        let b = solve(&hi);
        assert!(b.delivered_bytes() > a.delivered_bytes());
        assert!(b.offered_bytes > a.offered_bytes);
    }
}
