//! # xds-bench — the experiment harness
//!
//! One binary per figure/claim of the paper (see DESIGN.md §4 for the
//! index). Each binary regenerates its table on stdout and saves
//! CSV/JSON under `results/`. The heavy lifting — scenario description,
//! grid enumeration and the parallel sweep — lives in
//! [`xds_scenario`]; this crate keeps only presentation helpers:
//!
//! * [`parallel_map`] — re-exported order-preserving parallel runner
//!   (the simulations are single-threaded and deterministic; sweeps fan
//!   out across cores);
//! * [`standard_fast`] / [`standard_slow`] — the placement presets every
//!   experiment starts from, so results are comparable across binaries;
//! * [`emit`] — uniform stdout + CSV emission.

#![warn(missing_docs)]

pub mod bench;
pub mod validate;

use std::path::Path;

use xds_core::config::NodeConfig;
use xds_hw::{HwAlgo, HwSchedulerModel, SwSchedulerModel};
use xds_metrics::Table;
use xds_sim::SimDuration;

pub use xds_scenario::parallel_map;

/// The standard hardware placement: NetFPGA-SUME clock, 3-iteration iSLIP
/// cost model.
pub fn standard_fast(n: usize, reconfig: SimDuration) -> NodeConfig {
    NodeConfig::fast(
        n,
        reconfig,
        HwSchedulerModel::netfpga_sume(HwAlgo::Islip { iterations: 3 }),
    )
}

/// The standard software placement: kernel-driver control path.
pub fn standard_slow(n: usize, reconfig: SimDuration) -> NodeConfig {
    NodeConfig::slow(n, reconfig, SwSchedulerModel::kernel_driver())
}

/// Prints the table and saves it as `results/<name>.csv` (best-effort:
/// failures to write are reported, not fatal — the stdout copy is the
/// canonical artefact).
pub fn emit(name: &str, table: &Table) {
    print!("{}", table.render_text());
    let dir = Path::new("results");
    if std::fs::create_dir_all(dir).is_ok() {
        let path = dir.join(format!("{name}.csv"));
        if let Err(e) = std::fs::write(&path, table.render_csv()) {
            eprintln!("(could not save {}: {e})", path.display());
        } else {
            println!("[saved {}]", path.display());
        }
    }
    println!();
}

/// Prints the sweep's aggregate table and saves its JSON + CSV rows under
/// `results/<name>.{json,csv}` — the uniform artefact set of every
/// scenario-driven experiment.
pub fn emit_sweep(name: &str, title: &str, results: &xds_scenario::SweepResults) {
    emit_sweep_with(name, title, results, false);
}

/// [`emit_sweep`] with the deterministic internal-counter column group
/// optionally included in the JSON/CSV rows (the `--counters` flag of
/// the `sweep` binary).
pub fn emit_sweep_with(
    name: &str,
    title: &str,
    results: &xds_scenario::SweepResults,
    counters: bool,
) {
    print!("{}", results.summary_table(title).render_text());
    for path in results.write_artifacts_with(name, counters) {
        println!("[saved {}]", path.display());
    }
    println!();
}

/// Prints an experiment banner with its DESIGN.md id.
pub fn banner(id: &str, title: &str, what: &str) {
    println!("================================================================");
    println!("{id}: {title}");
    println!("{what}");
    println!("================================================================\n");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let got = parallel_map((0..100).collect(), |x: u64| x * 2);
        assert_eq!(got, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_empty_is_empty() {
        let got: Vec<u32> = parallel_map(Vec::<u32>::new(), |x| x);
        assert!(got.is_empty());
    }

    #[test]
    fn parallel_map_runs_heavy_closures() {
        // Results depend only on input, not scheduling.
        let got = parallel_map(vec![30u64, 1, 25, 7], |x| {
            (0..x * 10_000).fold(0u64, |a, b| a.wrapping_add(b)) & 0xff
        });
        let want: Vec<u64> = vec![30u64, 1, 25, 7]
            .into_iter()
            .map(|x| (0..x * 10_000).fold(0u64, |a, b| a.wrapping_add(b)) & 0xff)
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn standard_configs_validate() {
        standard_fast(16, SimDuration::from_nanos(100))
            .validate()
            .unwrap();
        standard_slow(16, SimDuration::from_millis(1))
            .validate()
            .unwrap();
    }
}
