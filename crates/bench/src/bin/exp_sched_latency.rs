//! **E3**: scheduler decision latency vs network performance.
//!
//! §2: "Slow schedulers can negatively impact the performance of the data
//! center network due to poor resource utilization." We sweep the decision
//! latency from hardware-scale (100 ns) to software-scale (5 ms) while
//! keeping everything else fixed, and watch throughput and tail FCT
//! collapse as decisions approach (then exceed) the epoch.
//!
//! ```sh
//! cargo run --release -p xds-bench --bin exp_sched_latency
//! ```

use xds_bench::{banner, emit, parallel_map};
use xds_core::config::{NodeConfig, Placement};
use xds_core::demand::MirrorEstimator;
use xds_core::node::Workload;
use xds_core::runtime::HybridSim;
use xds_core::sched::IslipScheduler;
use xds_hw::{ClockDomain, HwAlgo, HwSchedulerModel};
use xds_metrics::Table;
use xds_sim::{BitRate, SimDuration, SimRng, SimTime};
use xds_traffic::{FlowGenerator, FlowSizeDist, TrafficMatrix};

const N: usize = 16;

/// A placement whose decision latency is exactly `latency` (1 GHz clock,
/// one cycle per nanosecond in the demand stage; the algorithm itself is
/// costed at a single cycle so the sweep isolates the latency variable).
fn fixed_latency_placement(latency: SimDuration) -> Placement {
    Placement::Hardware(HwSchedulerModel {
        clock: ClockDomain::from_mhz(1000),
        demand_cycles: latency.as_nanos().max(1),
        algo: HwAlgo::Tdma,
        grant_cycles: 0,
    })
}

fn run_cell(decision: SimDuration, load: f64) -> (f64, f64, f64) {
    let mut cfg = NodeConfig::fast(
        N,
        SimDuration::from_micros(1),
        HwSchedulerModel::netfpga_sume(HwAlgo::Islip { iterations: 3 }),
    );
    cfg.placement = fixed_latency_placement(decision);
    cfg.epoch = SimDuration::from_micros(100);
    cfg.seed = 11;
    let epoch = cfg.epoch;
    let horizon = SimTime::ZERO + (epoch.max(decision) * 40).max(SimDuration::from_millis(20));
    let w = Workload::flows(FlowGenerator::with_load(
        TrafficMatrix::uniform(N),
        FlowSizeDist::Fixed(150_000),
        load,
        BitRate::GBPS_10,
        SimRng::new(13),
    ));
    let r = HybridSim::new(
        cfg,
        w,
        Box::new(IslipScheduler::new(N, 3)),
        Box::new(MirrorEstimator::new(N)),
    )
    .run(horizon);
    let p99_fct_us = r
        .fct_overall
        .as_ref()
        .map(|f| f.p99_ns as f64 / 1e3)
        .unwrap_or(f64::NAN);
    (r.throughput_gbps(), r.goodput_fraction(), p99_fct_us)
}

fn main() {
    banner(
        "E3",
        "decision latency vs throughput / tail FCT",
        "16x16 @ 10G, uniform bulk, epoch 100us, reconfig 1us. Decision\n\
         latency swept 100ns -> 5ms; beyond the epoch the scheduler cannot\n\
         keep up and utilization collapses (the paper's software-scheduler\n\
         argument).",
    );
    let decisions = vec![
        SimDuration::from_nanos(100),
        SimDuration::from_micros(1),
        SimDuration::from_micros(10),
        SimDuration::from_micros(50),
        SimDuration::from_micros(100),
        SimDuration::from_micros(500),
        SimDuration::from_millis(1),
        SimDuration::from_millis(5),
    ];
    let loads = [0.3, 0.6, 0.8];

    let cells: Vec<(SimDuration, f64)> = decisions
        .iter()
        .flat_map(|&d| loads.iter().map(move |&l| (d, l)))
        .collect();
    let results = parallel_map(cells, |(d, l)| run_cell(d, l));

    let mut table = Table::new(
        "E3: throughput (Gbps) and p99 FCT (us) vs decision latency",
        &[
            "decision",
            "vs epoch",
            "thru@0.3",
            "thru@0.6",
            "thru@0.8",
            "p99fct@0.6(us)",
            "goodput@0.8",
        ],
    );
    for (i, d) in decisions.iter().enumerate() {
        let row: Vec<&(f64, f64, f64)> = (0..3).map(|j| &results[i * 3 + j]).collect();
        table.row(vec![
            d.to_string(),
            format!("{:.3}x", d.as_nanos() as f64 / 100_000.0),
            format!("{:.2}", row[0].0),
            format!("{:.2}", row[1].0),
            format!("{:.2}", row[2].0),
            format!("{:.0}", row[1].2),
            format!("{:.2}", row[2].1),
        ]);
    }
    emit("exp_sched_latency", &table);
    println!(
        "expected shape: flat until decision ~ epoch (100us), then throughput\n\
         falls and tail FCT explodes — microsecond hardware decisions keep the\n\
         fabric busy, millisecond software decisions cannot."
    );
}
