//! **E3**: scheduler decision latency vs network performance.
//!
//! §2: "Slow schedulers can negatively impact the performance of the data
//! center network due to poor resource utilization." We sweep the decision
//! latency from hardware-scale (100 ns) to software-scale (5 ms) while
//! keeping everything else fixed, and watch throughput and tail FCT
//! collapse as decisions approach (then exceed) the epoch. A thin wrapper
//! over `xds-scenario`: a fixed-latency placement per decision point,
//! loads as the inner axis.
//!
//! ```sh
//! cargo run --release -p xds-bench --bin exp_sched_latency
//! ```

use xds_bench::{banner, emit, emit_sweep};
use xds_metrics::Table;
use xds_scenario::{PlacementKind, ScenarioSpec, SweepExecutor};
use xds_sim::SimDuration;

const N: usize = 16;
const EPOCH: SimDuration = SimDuration::from_micros(100);
const LOADS: [f64; 3] = [0.3, 0.6, 0.8];

fn main() {
    banner(
        "E3",
        "decision latency vs throughput / tail FCT",
        "16x16 @ 10G, uniform bulk, epoch 100us, reconfig 1us. Decision\n\
         latency swept 100ns -> 5ms; beyond the epoch the scheduler cannot\n\
         keep up and utilization collapses (the paper's software-scheduler\n\
         argument).",
    );
    let decisions = [
        SimDuration::from_nanos(100),
        SimDuration::from_micros(1),
        SimDuration::from_micros(10),
        SimDuration::from_micros(50),
        SimDuration::from_micros(100),
        SimDuration::from_micros(500),
        SimDuration::from_millis(1),
        SimDuration::from_millis(5),
    ];

    // The horizon must scale with the decision latency (a 5 ms decision
    // needs tens of epochs to show its steady state), so points are
    // derived from the base rather than cross-multiplied.
    let specs: Vec<ScenarioSpec> = decisions
        .iter()
        .flat_map(|&d| {
            let horizon = (EPOCH.max(d) * 40).max(SimDuration::from_millis(20));
            LOADS.iter().map(move |&l| {
                ScenarioSpec::new(format!("e3/d{d}/load{l:.1}"))
                    .with_ports(N)
                    .with_load(l)
                    .with_placement(PlacementKind::HardwareFixedLatency { latency: d })
                    .with_epoch(EPOCH)
                    .with_duration(horizon)
                    .with_seed(11)
            })
        })
        .collect();
    let results = SweepExecutor::new().run(specs);

    let mut table = Table::new(
        "E3: throughput (Gbps) and p99 FCT (us) vs decision latency",
        &[
            "decision",
            "vs epoch",
            "thru@0.3",
            "thru@0.6",
            "thru@0.8",
            "p99fct@0.6(us)",
            "goodput@0.8",
        ],
    );
    for (i, d) in decisions.iter().enumerate() {
        let report = |j: usize| results.report(i * LOADS.len() + j);
        let thru = |j: usize| {
            report(j)
                .map(|r| format!("{:.2}", r.throughput_gbps()))
                .unwrap_or_else(|| "-".into())
        };
        let p99fct = report(1)
            .and_then(|r| r.fct_overall.as_ref())
            .map(|f| format!("{:.0}", f.p99_ns as f64 / 1e3))
            .unwrap_or_else(|| "-".into());
        let goodput = report(2)
            .map(|r| format!("{:.2}", r.goodput_fraction()))
            .unwrap_or_else(|| "-".into());
        table.row(vec![
            d.to_string(),
            format!("{:.3}x", d.as_nanos() as f64 / EPOCH.as_nanos() as f64),
            thru(0),
            thru(1),
            thru(2),
            p99fct,
            goodput,
        ]);
    }
    emit("exp_sched_latency", &table);
    emit_sweep("exp_sched_latency_points", "E3 point dump", &results);
    println!(
        "expected shape: flat until decision ~ epoch (100us), then throughput\n\
         falls and tail FCT explodes — microsecond hardware decisions keep the\n\
         fabric busy, millisecond software decisions cannot."
    );
}
