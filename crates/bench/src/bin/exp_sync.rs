//! **E8**: host↔switch synchronization sensitivity.
//!
//! §2: software scheduling "requires tight synchronization between the
//! host and switch, which is difficult to achieve at faster switching
//! times and higher transmission rates."
//!
//! Three tables, the first two thin wrappers over `xds-scenario`:
//! * measured — goodput and dark-window hits vs clock skew, slow
//!   scheduling (a placements axis of skew bounds);
//! * measured — guard-band mitigation at fixed skew (a guards axis);
//! * analytic — the guard-band overhead each sync technology imposes as
//!   slots shrink (the reason fast switching *demands* on-switch
//!   scheduling).
//!
//! ```sh
//! cargo run --release -p xds-bench --bin exp_sync
//! ```

use xds_bench::{banner, emit, emit_sweep};
use xds_hw::SyncModel;
use xds_metrics::Table;
use xds_scenario::{
    PlacementKind, ScenarioSpec, SchedulerKind, SwModelKind, SweepExecutor, SweepGrid, SyncSpec,
};
use xds_sim::SimDuration;

const N: usize = 16;

fn base() -> ScenarioSpec {
    ScenarioSpec::new("e8")
        .with_ports(N)
        .with_load(0.4)
        .with_scheduler(SchedulerKind::Hotspot {
            threshold_bytes: 50_000,
        })
        .with_reconfig(SimDuration::from_micros(50))
        .with_epoch(SimDuration::from_millis(1))
        .with_duration(SimDuration::from_millis(40))
        .with_seed(61)
}

fn sw(skew: SimDuration) -> PlacementKind {
    PlacementKind::Software {
        model: SwModelKind::KernelDriver,
        sync: if skew.is_zero() {
            SyncSpec::Perfect
        } else {
            SyncSpec::SkewBound(skew)
        },
    }
}

fn skew_row(table: &mut Table, label: String, r: Option<&xds_core::report::RunReport>) {
    let Some(r) = r else { return };
    table.row(vec![
        label,
        r.drops.sync_violation.to_string(),
        xds_metrics::fmt_bytes(r.delivered_ocs_bytes),
        format!("{:.3}", r.goodput_fraction()),
    ]);
}

fn main() {
    banner(
        "E8",
        "synchronization sensitivity of slow (host-gated) scheduling",
        "16x16, software scheduler, 50us optical switching, 1ms epochs; hosts\n\
         obey their own skewed clocks when transmitting into grant windows.",
    );

    // --- (a) Skew sweep, no guard. ---
    let skews = [0u64, 1, 5, 20, 50, 200];
    let grid = SweepGrid::new(base()).placements(
        skews
            .iter()
            .map(|&us| sw(SimDuration::from_micros(us)))
            .collect(),
    );
    let results = SweepExecutor::new().run(grid.specs());
    let mut table = Table::new(
        "E8a: measured effect of clock skew (slow scheduling, no guard)",
        &["skew bound", "dark-window hits", "ocs bytes", "goodput"],
    );
    for (i, &us) in skews.iter().enumerate() {
        skew_row(
            &mut table,
            SimDuration::from_micros(us).to_string(),
            results.report(i),
        );
    }
    emit("exp_sync_measured", &table);
    emit_sweep("exp_sync_measured_points", "E8a point dump", &results);

    // --- (b mitigation) Guard-band sweep at fixed 20 µs skew. ---
    let guards = [0u64, 5, 10, 25, 50, 100];
    let grid = SweepGrid::new(base().with_placement(sw(SimDuration::from_micros(20)))).guards(
        guards
            .iter()
            .map(|&us| SimDuration::from_micros(us))
            .collect(),
    );
    let results = SweepExecutor::new().run(grid.specs());
    let mut mit = Table::new(
        "E8c: guard-band mitigation at 20us skew — violations vs capacity",
        &["guard", "dark-window hits", "ocs bytes", "goodput"],
    );
    for (i, &us) in guards.iter().enumerate() {
        skew_row(
            &mut mit,
            SimDuration::from_micros(us).to_string(),
            results.report(i),
        );
    }
    emit("exp_sync_guard_mitigation", &mit);
    emit_sweep("exp_sync_guard_points", "E8c point dump", &results);

    // --- (c) Analytic guard-band overhead. ---
    let mut guard = Table::new(
        "E8b: guard-band overhead (fraction of slot lost) per sync technology",
        &["slot length", "perfect", "ptp(~1us)", "ntp(~1ms)"],
    );
    for slot in [
        SimDuration::from_micros(10),
        SimDuration::from_micros(100),
        SimDuration::from_millis(1),
        SimDuration::from_millis(10),
        SimDuration::from_millis(100),
    ] {
        guard.row(vec![
            slot.to_string(),
            format!("{:.4}", SyncModel::perfect().guard_overhead(slot)),
            format!("{:.4}", SyncModel::ptp().guard_overhead(slot)),
            format!("{:.4}", SyncModel::ntp().guard_overhead(slot)),
        ]);
    }
    emit("exp_sync_guard", &guard);

    println!(
        "expected shape: violations appear once skew is comparable to the\n\
         switching time and grow with it; PTP guard bands are affordable for\n\
         millisecond slots but consume microsecond slots entirely — hardware\n\
         scheduling sidesteps the problem because grants never leave the chip."
    );
}
