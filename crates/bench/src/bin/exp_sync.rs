//! **E8**: host↔switch synchronization sensitivity.
//!
//! §2: software scheduling "requires tight synchronization between the
//! host and switch, which is difficult to achieve at faster switching
//! times and higher transmission rates."
//!
//! Two tables:
//! * measured — goodput and dark-window hits vs clock skew, slow
//!   scheduling (hosts transmit into their skewed view of the grant
//!   window);
//! * analytic — the guard-band overhead each sync technology imposes as
//!   slots shrink (the reason fast switching *demands* on-switch
//!   scheduling).
//!
//! ```sh
//! cargo run --release -p xds-bench --bin exp_sync
//! ```

use xds_bench::{banner, emit, parallel_map, standard_slow};
use xds_core::config::Placement;
use xds_core::demand::MirrorEstimator;
use xds_core::node::Workload;
use xds_core::runtime::HybridSim;
use xds_core::sched::HotspotScheduler;
use xds_hw::SyncModel;
use xds_metrics::Table;
use xds_sim::{BitRate, SimDuration, SimRng, SimTime};
use xds_traffic::{FlowGenerator, FlowSizeDist, TrafficMatrix};

const N: usize = 16;

fn run_skew_guard(skew: SimDuration, guard: SimDuration) -> (u64, u64, f64) {
    let mut cfg = standard_slow(N, SimDuration::from_micros(50));
    cfg.epoch = SimDuration::from_millis(1);
    cfg.seed = 61;
    cfg.guard = guard;
    if let Placement::Software { sync, .. } = &mut cfg.placement {
        *sync = SyncModel {
            skew_bound: skew,
            drift_ppb: 0,
            resync_interval: SimDuration::from_secs(1),
        };
    }
    let w = Workload::flows(FlowGenerator::with_load(
        TrafficMatrix::uniform(N),
        FlowSizeDist::Fixed(150_000),
        0.4,
        BitRate::GBPS_10,
        SimRng::new(59),
    ));
    let r = HybridSim::new(
        cfg,
        w,
        Box::new(HotspotScheduler::new(50_000)),
        Box::new(MirrorEstimator::new(N)),
    )
    .run(SimTime::from_millis(40));
    (
        r.drops.sync_violation,
        r.delivered_ocs_bytes,
        r.goodput_fraction(),
    )
}

fn main() {
    banner(
        "E8",
        "synchronization sensitivity of slow (host-gated) scheduling",
        "16x16, software scheduler, 50us optical switching, 1ms epochs; hosts\n\
         obey their own skewed clocks when transmitting into grant windows.",
    );

    let skews = vec![
        SimDuration::ZERO,
        SimDuration::from_micros(1),
        SimDuration::from_micros(5),
        SimDuration::from_micros(20),
        SimDuration::from_micros(50),
        SimDuration::from_micros(200),
    ];
    let results = parallel_map(skews.clone(), |s| run_skew_guard(s, SimDuration::ZERO));
    let mut table = Table::new(
        "E8a: measured effect of clock skew (slow scheduling, no guard)",
        &["skew bound", "dark-window hits", "ocs bytes", "goodput"],
    );
    for (skew, (viol, ocs, gp)) in skews.iter().zip(results.iter()) {
        table.row(vec![
            skew.to_string(),
            viol.to_string(),
            xds_metrics::fmt_bytes(*ocs),
            format!("{gp:.3}"),
        ]);
    }
    emit("exp_sync_measured", &table);

    // The mitigation: guard bands sized to the skew, at fixed skew 20 µs.
    let guards = vec![
        SimDuration::ZERO,
        SimDuration::from_micros(5),
        SimDuration::from_micros(10),
        SimDuration::from_micros(25),
        SimDuration::from_micros(50),
        SimDuration::from_micros(100),
    ];
    let skew = SimDuration::from_micros(20);
    let results = parallel_map(guards.clone(), |g| run_skew_guard(skew, g));
    let mut mit = Table::new(
        "E8c: guard-band mitigation at 20us skew — violations vs capacity",
        &["guard", "dark-window hits", "ocs bytes", "goodput"],
    );
    for (g, (viol, ocs, gp)) in guards.iter().zip(results.iter()) {
        mit.row(vec![
            g.to_string(),
            viol.to_string(),
            xds_metrics::fmt_bytes(*ocs),
            format!("{gp:.3}"),
        ]);
    }
    emit("exp_sync_guard_mitigation", &mit);

    // Analytic guard-band overhead.
    let mut guard = Table::new(
        "E8b: guard-band overhead (fraction of slot lost) per sync technology",
        &["slot length", "perfect", "ptp(~1us)", "ntp(~1ms)"],
    );
    for slot in [
        SimDuration::from_micros(10),
        SimDuration::from_micros(100),
        SimDuration::from_millis(1),
        SimDuration::from_millis(10),
        SimDuration::from_millis(100),
    ] {
        guard.row(vec![
            slot.to_string(),
            format!("{:.4}", SyncModel::perfect().guard_overhead(slot)),
            format!("{:.4}", SyncModel::ptp().guard_overhead(slot)),
            format!("{:.4}", SyncModel::ntp().guard_overhead(slot)),
        ]);
    }
    emit("exp_sync_guard", &guard);

    println!(
        "expected shape: violations appear once skew is comparable to the\n\
         switching time and grow with it; PTP guard bands are affordable for\n\
         millisecond slots but consume microsecond slots entirely — hardware\n\
         scheduling sidesteps the problem because grants never leave the chip."
    );
}
