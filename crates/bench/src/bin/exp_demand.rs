//! **E6**: demand-estimation quality under a moving hotspot.
//!
//! §2 credits hardware schedulers with "quick demand estimation". Quick is
//! necessary but not sufficient — the estimator must also *track* change.
//! A hotspot rotates every millisecond; four estimators feed the same
//! scheduler, and we report estimation error (mean relative L1 distance to
//! the true VOQ occupancy) and the throughput it costs.
//!
//! ```sh
//! cargo run --release -p xds-bench --bin exp_demand
//! ```

use xds_bench::{banner, emit, parallel_map, standard_fast};
use xds_core::demand::{
    CountMinEstimator, DemandEstimator, EwmaEstimator, MirrorEstimator, WindowEstimator,
};
use xds_core::node::Workload;
use xds_core::runtime::HybridSim;
use xds_core::sched::GreedyLqfScheduler;
use xds_metrics::Table;
use xds_sim::{BitRate, SimDuration, SimRng, SimTime};
use xds_traffic::{FlowGenerator, FlowSizeDist, TrafficMatrix};

const N: usize = 16;

fn estimator(name: &str) -> Box<dyn DemandEstimator> {
    match name {
        "mirror" => Box::new(MirrorEstimator::new(N)),
        "ewma_fast" => Box::new(EwmaEstimator::new(N, 0.5)),
        "ewma_slow" => Box::new(EwmaEstimator::new(N, 0.05)),
        "window" => Box::new(WindowEstimator::new(N, SimDuration::from_micros(500))),
        "countmin" => Box::new(CountMinEstimator::new(
            N,
            4,
            64,
            SimDuration::from_millis(1),
        )),
        other => panic!("unknown estimator {other}"),
    }
}

const ESTIMATORS: [&str; 5] = ["mirror", "ewma_fast", "ewma_slow", "window", "countmin"];

fn run_one(est: &str, rotate: bool) -> (f64, f64) {
    let cfg = standard_fast(N, SimDuration::from_micros(1));
    let base = TrafficMatrix::hotspot(N, 4, 0.8, 0);
    let mut w = Workload::flows(FlowGenerator::with_load(
        base.clone(),
        FlowSizeDist::Fixed(150_000),
        0.3,
        BitRate::GBPS_10,
        SimRng::new(41),
    ));
    if rotate {
        let cycle: Vec<TrafficMatrix> = (0..8)
            .map(|k| TrafficMatrix::hotspot(N, 4, 0.8, k * 2))
            .collect();
        w = w.with_matrix_cycle(SimDuration::from_millis(1), cycle);
    }
    let r = HybridSim::new(cfg, w, Box::new(GreedyLqfScheduler::new()), estimator(est))
        .run(SimTime::from_millis(25));
    (r.demand_error_mean.unwrap_or(f64::NAN), r.throughput_gbps())
}

fn main() {
    banner(
        "E6",
        "demand-estimation accuracy under a rotating hotspot",
        "16x16, 4 hot pairs carrying 80% of load 0.3, hotspot rotating every\n\
         1ms. Error = mean relative L1 distance between estimate and true VOQ\n\
         occupancy at each decision.",
    );

    let cells: Vec<(&str, bool)> = ESTIMATORS
        .iter()
        .flat_map(|&e| [false, true].into_iter().map(move |r| (e, r)))
        .collect();
    let results = parallel_map(cells, |(e, rot)| run_one(e, rot));

    let mut table = Table::new(
        "E6: estimation error and throughput, static vs rotating hotspot",
        &[
            "estimator",
            "err(static)",
            "thru(static)",
            "err(rotating)",
            "thru(rotating)",
        ],
    );
    for (i, e) in ESTIMATORS.iter().enumerate() {
        let stat = &results[i * 2];
        let rot = &results[i * 2 + 1];
        table.row(vec![
            e.to_string(),
            format!("{:.3}", stat.0),
            format!("{:.2}", stat.1),
            format!("{:.3}", rot.0),
            format!("{:.2}", rot.1),
        ]);
    }
    emit("exp_demand", &table);
    println!(
        "expected shape: the occupancy mirror tracks best (it sees the queues\n\
         directly — the hardware advantage); slow EWMA lags the rotation;\n\
         count-min trades accuracy (collision overestimates) for n-independent\n\
         memory."
    );
}
