//! **E6**: demand-estimation quality under a moving hotspot.
//!
//! §2 credits hardware schedulers with "quick demand estimation". Quick is
//! necessary but not sufficient — the estimator must also *track* change.
//! A hotspot rotates every millisecond; the estimators feed the same
//! scheduler, and we report estimation error (mean relative L1 distance to
//! the true VOQ occupancy) and the throughput it costs. A thin wrapper
//! over `xds-scenario`: estimators × {static, churn} as one grid.
//!
//! ```sh
//! cargo run --release -p xds-bench --bin exp_demand
//! ```

use xds_bench::{banner, emit, emit_sweep};
use xds_metrics::Table;
use xds_scenario::{
    EstimatorKind, ScenarioSpec, SchedulerKind, SweepExecutor, SweepGrid, TrafficPattern,
};
use xds_sim::SimDuration;

const N: usize = 16;

fn estimators() -> Vec<EstimatorKind> {
    vec![
        EstimatorKind::Mirror,
        EstimatorKind::Ewma { alpha: 0.5 },
        EstimatorKind::Ewma { alpha: 0.05 },
        EstimatorKind::Window {
            window: SimDuration::from_micros(500),
        },
        EstimatorKind::CountMin {
            depth: 4,
            width: 64,
            decay: SimDuration::from_millis(1),
        },
    ]
}

fn main() {
    banner(
        "E6",
        "demand-estimation accuracy under a rotating hotspot",
        "16x16, 4 hot pairs carrying 80% of load 0.3, hotspot rotating every\n\
         1ms. Error = mean relative L1 distance between estimate and true VOQ\n\
         occupancy at each decision.",
    );

    let base = ScenarioSpec::new("e6")
        .with_ports(N)
        .with_load(0.3)
        // Raw aggregate load, as in the original E6: the 4 hot pairs run
        // near saturation, which is what separates the estimators.
        .with_load_normalization(false)
        .with_scheduler(SchedulerKind::GreedyLqf)
        .with_duration(SimDuration::from_millis(25))
        .with_seed(41);
    let ests = estimators();
    let grid = SweepGrid::new(base)
        .estimators(ests.clone())
        // Patterns vary fastest (later axis): static first, then churn.
        .patterns(vec![
            TrafficPattern::Hotspot {
                pairs: 4,
                fraction: 0.8,
                offset: 0,
            },
            TrafficPattern::ChurnHotspot {
                pairs: 4,
                fraction: 0.8,
                period: SimDuration::from_millis(1),
                steps: 8,
            },
        ]);
    let results = SweepExecutor::new().run(grid.specs());

    let mut table = Table::new(
        "E6: estimation error and throughput, static vs rotating hotspot",
        &[
            "estimator",
            "err(static)",
            "thru(static)",
            "err(rotating)",
            "thru(rotating)",
        ],
    );
    for (i, e) in ests.iter().enumerate() {
        let cell = |j: usize| {
            results
                .report(i * 2 + j)
                .map(|r| {
                    (
                        format!("{:.3}", r.demand_error_mean.unwrap_or(f64::NAN)),
                        format!("{:.2}", r.throughput_gbps()),
                    )
                })
                .unwrap_or_else(|| ("-".into(), "-".into()))
        };
        let (err_s, thru_s) = cell(0);
        let (err_r, thru_r) = cell(1);
        table.row(vec![e.label(), err_s, thru_s, err_r, thru_r]);
    }
    emit("exp_demand", &table);
    emit_sweep("exp_demand_points", "E6 point dump", &results);
    println!(
        "expected shape: the occupancy mirror tracks best (it sees the queues\n\
         directly — the hardware advantage); slow EWMA lags the rotation;\n\
         count-min trades accuracy (collision overestimates) for n-independent\n\
         memory."
    );
}
