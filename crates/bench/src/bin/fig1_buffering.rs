//! **F1 — Figure 1**: buffering requirement vs optical switching time;
//! host buffering (slow scheduling) vs switch buffering (fast scheduling).
//!
//! Paper anchor (§2): "a 64x64 input-queued switch (operating at a rate of
//! 10 Gbps per port) with a millisecond switching time results in
//! approximately gigabytes of buffering memory … a nanosecond switching
//! time requires only kilobytes."
//!
//! Two views:
//! 1. the paper's first-order model — bytes arriving at full load during
//!    one scheduling period (10× the switching time, the 90 %-duty-cycle
//!    epoch) across all 64 ports;
//! 2. measured peak buffer occupancy from full simulations (64 ports,
//!    jumbo frames to keep event counts tractable), fast placement
//!    (switch VOQs) and slow placement (host VOQs).
//!
//! ```sh
//! cargo run --release -p xds-bench --bin fig1_buffering
//! ```

use xds_bench::{banner, emit, parallel_map, standard_fast, standard_slow};
use xds_core::config::NodeConfig;
use xds_core::demand::MirrorEstimator;
use xds_core::node::Workload;
use xds_core::runtime::SimBuilder;
use xds_core::sched::{HotspotScheduler, IslipScheduler};
use xds_metrics::fmt_bytes;
use xds_sim::{BitRate, SimDuration, SimRng, SimTime};
use xds_traffic::{FlowGenerator, FlowSizeDist, TrafficMatrix};

const N: usize = 64;
const LOAD: f64 = 0.6;

fn workload(_n: usize, seed: u64, mtu_fixed: u64, matrix: TrafficMatrix) -> Workload {
    Workload::flows(FlowGenerator::with_load(
        matrix,
        FlowSizeDist::Fixed(mtu_fixed * 40), // bulk flows, 40 jumbo frames
        LOAD,
        BitRate::GBPS_10,
        SimRng::new(seed),
    ))
}

fn tune(cfg: &mut NodeConfig) {
    cfg.mtu = 9000; // jumbo frames: 6× fewer events at identical byte loads
    cfg.voq_capacity = u64::MAX / 4; // measure demand, never drop
    cfg.eps_buffer = 64_000_000;
}

struct Row {
    reconfig: SimDuration,
    epoch: SimDuration,
    paper_model: u64,
    fast_peak: u64,
    fast_perm_peak: u64,
    slow_peak: u64,
    fast_duty: f64,
}

fn run_row(reconfig: SimDuration) -> Row {
    // Fast placement: hardware scheduler, switch VOQs, uniform all-to-all
    // (the per-pair VOQ worst case: n² queues each hold ~1 epoch of their
    // pair's rate).
    let mut fast_cfg = standard_fast(N, reconfig);
    tune(&mut fast_cfg);
    let epoch = fast_cfg.epoch;
    let horizon = SimTime::ZERO + (epoch * 8).max(SimDuration::from_millis(20));
    let fast = SimBuilder::new(fast_cfg.clone())
        .workload(workload(N, 42, 9_000, TrafficMatrix::uniform(N)))
        .scheduler(Box::new(IslipScheduler::new(N, 3)))
        .estimator(Box::new(MirrorEstimator::new(N)))
        .build()
        .expect("valid testbed")
        .run(horizon);

    // Same placement under permutation traffic (one live VOQ per port —
    // the per-port regime the paper's first-order model describes).
    let fast_perm = SimBuilder::new(fast_cfg)
        .workload(workload(N, 42, 9_000, TrafficMatrix::permutation(N, 7)))
        .scheduler(Box::new(IslipScheduler::new(N, 3)))
        .estimator(Box::new(MirrorEstimator::new(N)))
        .build()
        .expect("valid testbed")
        .run(horizon);

    // Slow placement: software scheduler, host VOQs, same cadence.
    let mut slow_cfg = standard_slow(N, reconfig);
    tune(&mut slow_cfg);
    slow_cfg.epoch = epoch.max(slow_cfg.epoch);
    let slow_horizon = SimTime::ZERO + (slow_cfg.epoch * 8).max(SimDuration::from_millis(20));
    let slow = SimBuilder::new(slow_cfg)
        .workload(workload(N, 42, 9_000, TrafficMatrix::uniform(N)))
        .scheduler(Box::new(HotspotScheduler::new(50_000)))
        .estimator(Box::new(MirrorEstimator::new(N)))
        .build()
        .expect("valid testbed")
        .run(slow_horizon);

    // Paper first-order model: all ports at `LOAD` accumulate for one
    // scheduling period (10× switching time, i.e. a 90 % duty cycle).
    let period = reconfig * 10;
    let paper_model =
        (N as f64 * LOAD * BitRate::GBPS_10.bytes_per_sec() as f64 * period.as_secs_f64()) as u64;

    Row {
        reconfig,
        epoch,
        paper_model,
        fast_peak: fast.peak_switch_buffer,
        fast_perm_peak: fast_perm.peak_switch_buffer,
        slow_peak: slow.peak_host_buffer,
        fast_duty: fast.ocs_duty_cycle(),
    }
}

fn main() {
    banner(
        "F1",
        "Figure 1 — host vs switch buffering across switching times",
        "64 ports x 10 Gbps, uniform bulk traffic at 0.6 load; the paper's\n\
         ms->GB / ns->KB buffering argument, model and measurement.",
    );
    let sweep: Vec<SimDuration> = vec![
        SimDuration::from_nanos(10),
        SimDuration::from_nanos(100),
        SimDuration::from_micros(1),
        SimDuration::from_micros(10),
        SimDuration::from_micros(100),
        SimDuration::from_millis(1),
        SimDuration::from_millis(10),
    ];
    let rows = parallel_map(sweep, run_row);

    let mut table = xds_metrics::Table::new(
        "F1: buffering vs switching time (64x64 @ 10G, load 0.6)",
        &[
            "switching time",
            "epoch",
            "paper model (64p)",
            "fast/uniform: switch buf",
            "fast/perm: switch buf",
            "slow: host buf",
            "fast duty%",
        ],
    );
    for r in &rows {
        table.row(vec![
            r.reconfig.to_string(),
            r.epoch.to_string(),
            fmt_bytes(r.paper_model),
            fmt_bytes(r.fast_peak),
            fmt_bytes(r.fast_perm_peak),
            fmt_bytes(r.slow_peak),
            format!("{:.2}", r.fast_duty * 100.0),
        ]);
    }
    emit("fig1_buffering", &table);

    let ns = &rows[0];
    let ms = &rows[5];
    println!(
        "paper anchor: ms switching -> {} (paper: ~gigabytes with slack); \
         ns switching -> {} (paper: ~kilobytes).",
        fmt_bytes(ms.paper_model),
        fmt_bytes(ns.paper_model),
    );
    println!(
        "measured: slow/ms parks {} in hosts vs fast/ns {} in the switch — \
         a {}x reduction.",
        fmt_bytes(ms.slow_peak),
        fmt_bytes(ns.fast_peak),
        ms.slow_peak.checked_div(ns.fast_peak).unwrap_or(0),
    );
}
