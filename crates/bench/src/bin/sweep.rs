//! `sweep` — the scenario library's command-line front end.
//!
//! ```text
//! sweep list
//! sweep run <scenario>[,<scenario>…]|all [options]
//! sweep timeseries <scenario>[,<scenario>…]|all [options]
//! sweep trace <scenario>[,<scenario>…]|all [options]
//! sweep bench [--smoke] [--baseline file.json] [--out file.json] [--date YYYY-MM-DD]
//!             [--repeat N] [--profile full|lean] [--fidelity exact|estimate]
//!             [--shards k] [--point-timeout secs]
//! sweep validate-estimates [--smoke] [--out name] [--point-timeout secs]
//!
//! options (run / timeseries / trace):
//!   --ports n1,n2,…        port-count axis          (default: scenario's)
//!   --loads l1,l2,…        offered-load axis        (default: scenario's)
//!   --schedulers s1,s2,…   scheduler axis by name   (default: scenario's)
//!   --seeds s1,s2,…        seed axis (replicas)     (default: scenario's)
//!   --reconfigs-us r1,…    switching-time axis, µs  (default: scenario's)
//!   --shards k1,k2,…       shard-count axis         (default: scenario's)
//!   --fidelity f1,f2,…     fidelity-tier axis: exact|estimate (default: exact)
//!   --duration-ms d        horizon per point        (default: scenario's)
//!   --threads t            worker threads           (default: all cores)
//!   --out name             artifact basename        (default: sweep_<scenario>)
//!   --profile p            instrumentation profile: full|lean|timeseries
//!                          (run only; default full)
//!   --trace                flight recorder on: save Chrome-trace JSON per point
//!   --counters             append the deterministic internal-counter columns
//!   --point-timeout secs   wall-clock watchdog per point: an overrunning
//!                          point becomes an error row, the sweep continues
//! ```
//!
//! Every run prints the aggregate table and saves machine-readable
//! `results/<out>.json` and `results/<out>.csv`. When any point runs the
//! `timeseries` instrumentation profile, the epoch-resolution stream is
//! additionally saved as `results/<out>.timeseries.{json,csv}` — one row
//! per `(point, epoch)` with demand error, duty cycle and VOQ backlog.
//! `sweep timeseries` is shorthand for `sweep run --profile timeseries`.
//!
//! With `--trace` (or the `sweep trace` shorthand, which also pins
//! `--counters`), every point runs with the flight recorder on and its
//! wall-clock span trace is saved as Chrome Trace Event Format JSON —
//! `results/<out>.trace.json` for a single point, one
//! `results/<out>.<point>.trace.json` per point otherwise — loadable in
//! Perfetto (ui.perfetto.dev) or chrome://tracing. Tracing never changes
//! simulated behavior; wall-clock data stays out of the deterministic
//! row artifacts. `--counters` appends the [`xds_core::CounterSet`]
//! column group (scheduler memoization, ladder-queue paths, packet-pool
//! ledger, grant batching) to the JSON/CSV rows; those values are pure
//! functions of the simulated event sequence and safe to pin.
//!
//! The `--shards` axis selects the port-group shard count of the
//! parallel simulation core. Events, delivered bytes and behavioral
//! counters are invariant in it by the core's determinism contract —
//! sweeping it compares execution cost, never results.
//!
//! `--point-timeout` arms a wall-clock watchdog around every point (the
//! sweep engine's guarded runner): a point that overruns the budget is
//! recorded as an error row naming the point and the limit, and the rest
//! of the sweep proceeds. A panicking point is likewise isolated into an
//! error row even without a timeout. The watchdog is harness-side only —
//! it never reaches into simulated time, so points that finish within
//! budget produce byte-identical artifacts with or without the flag.
//!
//! `sweep bench` runs the pinned perf-baseline subset (see
//! [`xds_bench::bench`]) sequentially on one thread, prints wall-clock and
//! events/sec per point, and writes `BENCH_<date>.json`; with
//! `--shards k`, every point of the subset is forced to `k` shards
//! (point names are unchanged, and events/bytes are shard-invariant, so
//! the artifact still matches historical baselines point-for-point); with
//! `--baseline`, per-point and aggregate speedups against a previous
//! artifact are embedded. `--repeat N` runs every point N times and keeps
//! the fastest (the documented measurement method on a noisy host; the
//! artifact records `repeats`); with `--point-timeout`, a bench point
//! that overruns the per-point wall-clock budget aborts the bench with
//! an error naming it (bench artifacts must be complete to be
//! baseline-comparable, so there is no partial-artifact mode). Bench points default to the `lean`
//! instrumentation profile — events and delivered bytes are identical to
//! `full` (enforced by the instrument-equivalence test), so the artifact
//! stays comparable to historical baselines while excluding observation
//! cost from the measurement; the artifact records `profile`. `--smoke`
//! is the CI liveness mode: ~20× shorter horizons, output under
//! `results/`.
//!
//! The `--fidelity` axis selects the simulation tier per point: `exact`
//! (the event-driven core, the default everywhere) or `estimate` (the
//! decomposed per-link fast tier in `xds-estimate`). Estimate rows are
//! column-compatible with exact rows and every artifact carries a
//! `fidelity` column, so mixed-tier sweeps stay joinable. `sweep bench
//! --fidelity estimate` benches the estimator itself; the artifact
//! records the tier and baseline diffs warn across tiers.
//!
//! `sweep validate-estimates` is the estimate tier's contract check: it
//! runs the pinned bench catalogue at both tiers sequentially, prints
//! per-scenario error envelopes and speedups, and writes
//! `results/<out>.validation.{json,csv}` (see [`xds_bench::validate`]).
//! `--smoke` shrinks horizons exactly like `sweep bench --smoke`.

use std::process::ExitCode;

use xds_bench::emit_sweep_with;
use xds_scenario::{
    library, Fidelity, InstrProfile, ScenarioSpec, SchedulerKind, SweepExecutor, SweepGrid,
};
use xds_sim::SimDuration;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  sweep list\n  sweep run <scenario>[,…]|all [--ports n,…] [--loads l,…]\n\
         \x20            [--schedulers s,…] [--seeds s,…] [--reconfigs-us r,…]\n\
         \x20            [--shards k,…] [--fidelity f,…] [--duration-ms d]\n\
         \x20            [--threads t] [--out name]\n\
         \x20            [--profile full|lean|timeseries] [--trace] [--counters]\n\
         \x20            [--point-timeout secs]\n\
         \x20 sweep timeseries <scenario>[,…]|all [run options]\n\
         \x20 sweep trace <scenario>[,…]|all [run options]\n\
         \x20 sweep bench [--smoke] [--baseline file.json] [--out file.json]\n\
         \x20            [--date YYYY-MM-DD] [--repeat N] [--profile full|lean]\n\
         \x20            [--fidelity exact|estimate] [--shards k] [--point-timeout secs]\n\
         \x20 sweep validate-estimates [--smoke] [--out name] [--point-timeout secs]\n\
         scenarios: {}",
        library::all_names().join(", ")
    );
    ExitCode::FAILURE
}

fn parse_list<T: std::str::FromStr>(v: &str) -> Result<Vec<T>, String> {
    v.split(',')
        .map(|s| {
            s.trim()
                .parse::<T>()
                .map_err(|_| format!("bad value {s:?} in {v:?}"))
        })
        .collect()
}

struct Options {
    ports: Vec<usize>,
    loads: Vec<f64>,
    schedulers: Vec<SchedulerKind>,
    seeds: Vec<u64>,
    reconfigs: Vec<SimDuration>,
    shards: Vec<usize>,
    fidelities: Vec<Fidelity>,
    duration: Option<SimDuration>,
    threads: Option<usize>,
    out: Option<String>,
    profile: Option<InstrProfile>,
    trace: bool,
    counters: bool,
    point_timeout: Option<std::time::Duration>,
}

fn parse_point_timeout(v: &str) -> Result<std::time::Duration, String> {
    v.parse::<u64>()
        .ok()
        .filter(|&s| s >= 1)
        .map(std::time::Duration::from_secs)
        .ok_or_else(|| "bad --point-timeout (need an integer number of seconds >= 1)".into())
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut o = Options {
        ports: Vec::new(),
        loads: Vec::new(),
        schedulers: Vec::new(),
        seeds: Vec::new(),
        reconfigs: Vec::new(),
        shards: Vec::new(),
        fidelities: Vec::new(),
        duration: None,
        threads: None,
        out: None,
        profile: None,
        trace: false,
        counters: false,
        point_timeout: None,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--ports" => o.ports = parse_list(&value()?)?,
            "--loads" => o.loads = parse_list(&value()?)?,
            "--seeds" => o.seeds = parse_list(&value()?)?,
            "--shards" => o.shards = parse_list(&value()?)?,
            "--reconfigs-us" => {
                o.reconfigs = parse_list::<u64>(&value()?)?
                    .into_iter()
                    .map(SimDuration::from_micros)
                    .collect()
            }
            "--fidelity" => {
                o.fidelities = value()?
                    .split(',')
                    .map(|n| {
                        Fidelity::from_name(n.trim())
                            .ok_or_else(|| format!("unknown fidelity {n:?} (exact|estimate)"))
                    })
                    .collect::<Result<_, _>>()?
            }
            "--schedulers" => {
                o.schedulers = value()?
                    .split(',')
                    .map(|n| {
                        SchedulerKind::from_name(n.trim())
                            .ok_or_else(|| format!("unknown scheduler {n:?}"))
                    })
                    .collect::<Result<_, _>>()?
            }
            "--duration-ms" => {
                o.duration = Some(SimDuration::from_millis(
                    value()?.parse().map_err(|_| "bad --duration-ms")?,
                ))
            }
            "--threads" => o.threads = Some(value()?.parse().map_err(|_| "bad --threads")?),
            "--out" => o.out = Some(value()?),
            "--trace" => o.trace = true,
            "--counters" => o.counters = true,
            "--point-timeout" => o.point_timeout = Some(parse_point_timeout(&value()?)?),
            "--profile" => {
                let v = value()?;
                o.profile = Some(
                    InstrProfile::from_name(&v)
                        .ok_or_else(|| format!("unknown profile {v:?} (full|lean|timeseries)"))?,
                )
            }
            other => return Err(format!("unknown option {other}")),
        }
    }
    Ok(o)
}

fn run(names: &str, opts: Options) -> Result<(), String> {
    let names: Vec<&str> = if names == "all" {
        library::all_names()
    } else {
        names.split(',').map(str::trim).collect()
    };
    let mut specs: Vec<ScenarioSpec> = Vec::new();
    for name in &names {
        let mut base =
            library::scenario(name).ok_or_else(|| format!("unknown scenario {name:?}"))?;
        if let Some(d) = opts.duration {
            base = base.with_duration(d);
        }
        if let Some(p) = opts.profile {
            base = base.with_profile(p);
        }
        if opts.trace {
            base = base.with_trace(true);
        }
        let mut grid = SweepGrid::new(base);
        if !opts.ports.is_empty() {
            grid = grid.ports(opts.ports.clone());
        }
        if !opts.loads.is_empty() {
            grid = grid.loads(opts.loads.clone());
        }
        if !opts.schedulers.is_empty() {
            grid = grid.schedulers(opts.schedulers.clone());
        }
        if !opts.seeds.is_empty() {
            grid = grid.seeds(opts.seeds.clone());
        }
        if !opts.reconfigs.is_empty() {
            grid = grid.reconfigs(opts.reconfigs.clone());
        }
        if !opts.shards.is_empty() {
            grid = grid.shards(opts.shards.clone());
        }
        if !opts.fidelities.is_empty() {
            grid = grid.fidelities(opts.fidelities.clone());
        }
        specs.extend(grid.specs());
    }
    let executor = match opts.threads {
        Some(t) => SweepExecutor::with_threads(t),
        None => SweepExecutor::new(),
    }
    .with_point_timeout(opts.point_timeout);
    println!(
        "sweep: {} point(s) across {} thread(s)\n",
        specs.len(),
        executor.threads()
    );
    let results = executor.run(specs);
    let out = opts
        .out
        .clone()
        .unwrap_or_else(|| format!("sweep_{}", names.join("_")));
    emit_sweep_with(
        &out,
        &format!("sweep: {}", names.join(", ")),
        &results,
        opts.counters,
    );
    if results.has_timeseries() {
        for path in results.write_timeseries_artifacts(&out) {
            println!("[saved {}]", path.display());
        }
    }
    if results.has_traces() {
        for path in results.write_trace_artifacts(&out) {
            println!("[saved {}]", path.display());
        }
    }
    let failed = results.points.iter().filter(|p| p.report.is_err()).count();
    if failed > 0 {
        Err(format!("{failed} point(s) failed"))
    } else {
        Ok(())
    }
}

fn run_bench_cmd(args: &[String]) -> Result<(), String> {
    let mut smoke = false;
    let mut baseline_path: Option<String> = None;
    let mut out: Option<String> = None;
    let mut date: Option<String> = None;
    let mut repeat: u32 = 1;
    let mut profile = InstrProfile::Lean;
    let mut fidelity = Fidelity::Exact;
    let mut shards: Option<usize> = None;
    let mut point_timeout: Option<std::time::Duration> = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--smoke" => smoke = true,
            "--baseline" => baseline_path = Some(value()?),
            "--out" => out = Some(value()?),
            "--date" => date = Some(value()?),
            "--repeat" => {
                repeat = value()?
                    .parse()
                    .ok()
                    .filter(|&r| r >= 1)
                    .ok_or("bad --repeat (need an integer >= 1)")?
            }
            "--profile" => {
                let v = value()?;
                profile = match InstrProfile::from_name(&v) {
                    Some(p @ (InstrProfile::Full | InstrProfile::Lean)) => p,
                    _ => return Err(format!("bad --profile {v:?} (bench takes full|lean)")),
                }
            }
            "--fidelity" => {
                let v = value()?;
                fidelity = Fidelity::from_name(&v)
                    .ok_or_else(|| format!("bad --fidelity {v:?} (exact|estimate)"))?
            }
            "--shards" => {
                shards = Some(
                    value()?
                        .parse()
                        .ok()
                        .filter(|&k| k >= 1)
                        .ok_or("bad --shards (need an integer >= 1)")?,
                )
            }
            "--point-timeout" => point_timeout = Some(parse_point_timeout(&value()?)?),
            other => return Err(format!("unknown option {other}")),
        }
    }
    // Resolve the baseline *before* running minutes of bench points: a
    // bad path or a truncated artifact must fail in milliseconds with a
    // one-line error, not panic after the measurement.
    let baseline = match &baseline_path {
        None => None,
        Some(p) => Some(xds_bench::bench::Baseline::load(p)?),
    };
    if let Some(b) = &baseline {
        if let Some(warn) = b.profile_mismatch_warning(profile.label()) {
            eprintln!("{warn}");
        }
        if let Some(warn) = b.fidelity_mismatch_warning(fidelity.label()) {
            eprintln!("{warn}");
        }
    }
    let mode = if smoke { "smoke" } else { "full" };
    let date = date.unwrap_or_else(xds_bench::bench::today_string);
    let mut specs = xds_bench::bench::catalogue(smoke);
    // Forcing the shard count never changes events or delivered bytes
    // (the sharded core's determinism contract), so point names stay
    // untouched and the artifact remains baseline-comparable.
    if let Some(k) = shards {
        specs = specs.into_iter().map(|s| s.with_shards(k)).collect();
    }
    println!(
        "sweep bench: {} pinned point(s), mode={mode}, fastest-of-{repeat}, \
         profile={}, fidelity={}{}, sequential single-thread\n",
        specs.len(),
        profile.label(),
        fidelity.label(),
        match shards {
            Some(k) => format!(", shards={k}"),
            None => String::new(),
        }
    );
    let run = xds_bench::bench::run_bench(
        specs,
        mode,
        date.clone(),
        repeat,
        profile,
        fidelity,
        point_timeout,
        |p| {
            println!(
                "  {:<20} {:>10} events {:>9.1} ms {:>12.0} ev/s",
                p.name,
                p.events,
                p.wall_ns as f64 / 1e6,
                p.events_per_sec()
            );
        },
    )?;
    println!(
        "\n  total: {} events in {:.1} ms = {:.0} events/sec",
        run.total_events(),
        run.total_wall_ns() as f64 / 1e6,
        run.events_per_sec()
    );
    if let Some(b) = &baseline {
        let m = run.matched_speedup(b);
        match m.speedup() {
            Some(speedup) => println!(
                "  baseline ({}): {:.0} events/sec on the {} matched point(s) \
                 -> speedup {speedup:.2}x{}",
                b.date,
                m.baseline_events_per_sec,
                m.matched,
                if m.baseline_exact {
                    ""
                } else {
                    " (baseline lacks raw counters: denominator is its whole-subset aggregate)"
                }
            ),
            None => println!(
                "  baseline ({}): no points in common with this subset — \
                 no speedup to report",
                b.date
            ),
        }
    }
    let path = out.unwrap_or_else(|| {
        if smoke {
            // CI liveness runs must not overwrite the committed artifact.
            format!("results/bench_smoke_{date}.json")
        } else {
            format!("BENCH_{date}.json")
        }
    });
    if let Some(dir) = std::path::Path::new(&path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).map_err(|e| format!("mkdir {}: {e}", dir.display()))?;
        }
    }
    std::fs::write(&path, run.to_json(baseline.as_ref()))
        .map_err(|e| format!("cannot write {path}: {e}"))?;
    println!("[saved {path}]");
    Ok(())
}

fn run_validate_cmd(args: &[String]) -> Result<(), String> {
    let mut smoke = false;
    let mut out: Option<String> = None;
    let mut point_timeout: Option<std::time::Duration> = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = Some(value()?),
            "--point-timeout" => point_timeout = Some(parse_point_timeout(&value()?)?),
            other => return Err(format!("unknown option {other}")),
        }
    }
    let mode = if smoke { "smoke" } else { "full" };
    let specs = xds_bench::bench::catalogue(smoke);
    println!(
        "sweep validate-estimates: {} catalogue point(s), mode={mode}, \
         exact vs estimate, sequential single-thread\n",
        specs.len()
    );
    let run = xds_bench::validate::run_validation(
        specs,
        mode,
        xds_bench::bench::today_string(),
        point_timeout,
        |r| {
            let errs = r.err_values();
            println!(
                "  {:<22} exact {:>9.1} ms  est {:>8.2} ms  speedup {:>7.1}x  \
                 err p50 {:.4} p95 {:.4} max {:.4}",
                r.name,
                r.exact_wall_ns as f64 / 1e6,
                r.est_wall_ns as f64 / 1e6,
                r.speedup(),
                xds_metrics::percentile_of(&errs, 0.50),
                xds_metrics::percentile_of(&errs, 0.95),
                xds_metrics::percentile_of(&errs, 1.0),
            );
        },
    )?;
    let all = run.all_errors();
    println!(
        "\n  envelope over {} comparison(s): err p50 {:.4} p95 {:.4} max {:.4}",
        all.len(),
        xds_metrics::percentile_of(&all, 0.50),
        xds_metrics::percentile_of(&all, 0.95),
        xds_metrics::percentile_of(&all, 1.0),
    );
    if let Some(s) = run.min_kilofabric_speedup() {
        println!("  minimum kilofabric speedup: {s:.1}x");
    }
    let base = out.unwrap_or_else(|| format!("validate_{mode}"));
    std::fs::create_dir_all("results").map_err(|e| format!("mkdir results: {e}"))?;
    for (ext, body) in [("json", run.to_json()), ("csv", run.to_csv())] {
        let path = format!("results/{base}.validation.{ext}");
        std::fs::write(&path, body).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("[saved {path}]");
    }
    Ok(())
}

/// Formats one catalogue line per scenario name, resolving each through
/// the library. A name that fails to resolve — catalogue drift, or a
/// hand-edited invocation listing a scenario that no longer exists — is
/// a one-line user error (same style as `Baseline::load`), not a panic.
fn list_lines<'a>(names: impl IntoIterator<Item = &'a str>) -> Result<Vec<String>, String> {
    names
        .into_iter()
        .map(|name| {
            let spec = library::scenario(name)
                .ok_or_else(|| format!("unknown scenario {name:?} (see `sweep list`)"))?;
            Ok(format!(
                "{name:<18} ports={:<5} pattern={:<14} sizes={:<10} sched={:<10} apps={:<10} faults={}",
                spec.n_ports,
                spec.pattern.label(),
                spec.sizes.label(),
                spec.scheduler.label(),
                spec.apps.label(),
                spec.faults
                    .as_ref()
                    .map(xds_core::FaultPlan::label)
                    .unwrap_or_else(|| "none".into()),
            ))
        })
        .collect()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => match list_lines(library::all_names()) {
            Ok(lines) => {
                for line in lines {
                    println!("{line}");
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("sweep list: {e}");
                ExitCode::FAILURE
            }
        },
        Some("bench") => match run_bench_cmd(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("sweep bench: {e}");
                ExitCode::FAILURE
            }
        },
        Some("validate-estimates") => match run_validate_cmd(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("sweep validate-estimates: {e}");
                ExitCode::FAILURE
            }
        },
        Some("run") => {
            let Some(names) = args.get(1).filter(|a| !a.starts_with("--")) else {
                return usage();
            };
            match parse_options(&args[2..]).and_then(|o| run(names, o)) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("sweep: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("trace") => {
            // `sweep run --trace --counters`: the flight-recorder
            // artifact plus pinnable counters is the whole point here.
            let Some(names) = args.get(1).filter(|a| !a.starts_with("--")) else {
                return usage();
            };
            let parsed = parse_options(&args[2..]).map(|mut o| {
                o.trace = true;
                o.counters = true;
                o
            });
            match parsed.and_then(|o| run(names, o)) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("sweep trace: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("timeseries") => {
            // `sweep run --profile timeseries` with the profile pinned:
            // the epoch-resolution artifact is the whole point here.
            let Some(names) = args.get(1).filter(|a| !a.starts_with("--")) else {
                return usage();
            };
            let parsed = parse_options(&args[2..]).and_then(|mut o| {
                // Reject a conflicting explicit profile instead of
                // silently overriding it (mirrors bench's behavior).
                if matches!(o.profile, Some(p) if p != InstrProfile::TimeSeries) {
                    return Err("the timeseries subcommand pins --profile timeseries; \
                         use `sweep run --profile <p>` for other profiles"
                        .into());
                }
                o.profile = Some(InstrProfile::TimeSeries);
                Ok(o)
            });
            match parsed.and_then(|o| run(names, o)) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("sweep timeseries: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => usage(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_resolves_the_whole_catalogue() {
        let lines = list_lines(library::all_names()).expect("every catalogue name must resolve");
        assert_eq!(lines.len(), library::all_names().len());
        for l in &lines {
            for col in ["ports=", "pattern=", "sizes=", "sched=", "apps=", "faults="] {
                assert!(l.contains(col), "list line lost its {col} column: {l}");
            }
        }
        // Faulted entries show their plan; clean ones read as none.
        let storm = lines
            .iter()
            .find(|l| l.starts_with("fault-storm"))
            .expect("fault-storm is in the catalogue");
        assert!(storm.contains("faults=link+misfire+stall"), "{storm}");
        let uniform = lines
            .iter()
            .find(|l| l.starts_with("uniform "))
            .expect("uniform is in the catalogue");
        assert!(uniform.contains("faults=none"), "{uniform}");
    }

    #[test]
    fn list_reports_a_one_line_error_for_unknown_names() {
        let err = list_lines(["uniform", "no-such-scenario"])
            .expect_err("a vanished scenario name must not panic");
        assert!(
            err.contains("unknown scenario \"no-such-scenario\""),
            "error must name the missing entry: {err}"
        );
        assert!(!err.contains('\n'), "one-line user error: {err}");
    }
}
