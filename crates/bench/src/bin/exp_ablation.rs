//! **E10 (ablations)**: the design choices DESIGN.md calls out, isolated.
//!
//! 1. **iSLIP iteration count** — how many request–grant–accept rounds
//!    does the hardware need? (Each costs `2·⌈log₂n⌉+2` cycles.)
//! 2. **Decomposition budget** — how many OCS configurations per epoch
//!    are worth their dark windows (Solstice's `max_entries`)?
//! 3. **Epoch length** — the duty-cycle vs responsiveness trade: long
//!    epochs amortize reconfiguration but add queueing delay.
//!
//! ```sh
//! cargo run --release -p xds-bench --bin exp_ablation
//! ```

use xds_bench::{banner, emit, parallel_map, standard_fast};
use xds_core::demand::MirrorEstimator;
use xds_core::node::Workload;
use xds_core::report::RunReport;
use xds_core::runtime::HybridSim;
use xds_core::sched::{IslipScheduler, Scheduler, SolsticeScheduler};
use xds_hw::{ClockDomain, HwAlgo};
use xds_metrics::Table;
use xds_sim::{BitRate, SimDuration, SimRng, SimTime};
use xds_traffic::{FlowGenerator, FlowSizeDist, TrafficMatrix};

const N: usize = 16;

fn run(
    sched: Box<dyn Scheduler>,
    matrix: TrafficMatrix,
    load: f64,
    epoch: Option<SimDuration>,
    max_entries: usize,
) -> RunReport {
    let mut cfg = standard_fast(N, SimDuration::from_micros(1));
    if let Some(e) = epoch {
        cfg.epoch = e;
    }
    cfg.max_entries = max_entries;
    let eff = load / matrix.imbalance();
    let w = Workload::flows(FlowGenerator::with_load(
        matrix,
        FlowSizeDist::Fixed(150_000),
        eff,
        BitRate::GBPS_10,
        SimRng::new(81),
    ));
    HybridSim::new(cfg, w, sched, Box::new(MirrorEstimator::new(N))).run(SimTime::from_millis(15))
}

fn main() {
    banner(
        "E10",
        "ablations: iSLIP iterations, decomposition budget, epoch length",
        "16x16 @ 10G, bulk flows; each table isolates one design parameter.",
    );

    // --- (1) iSLIP iterations. ---
    let iters: Vec<u32> = vec![1, 2, 3, 4, 6];
    let results = parallel_map(iters.clone(), |i| {
        run(
            Box::new(IslipScheduler::new(N, i)),
            TrafficMatrix::uniform(N),
            0.8,
            None,
            4,
        )
    });
    let mut t1 = Table::new(
        "E10a: iSLIP iteration count (uniform @ 0.8)",
        &["iterations", "hw cycles", "hw latency", "thru(Gbps)", "p99 bulk(us)"],
    );
    for (i, r) in iters.iter().zip(results.iter()) {
        let cycles = HwAlgo::Islip { iterations: *i }.schedule_cycles(N);
        t1.row(vec![
            i.to_string(),
            cycles.to_string(),
            ClockDomain::NETFPGA_SUME.cycles_to_time(cycles).to_string(),
            format!("{:.2}", r.throughput_gbps()),
            format!("{:.1}", r.latency_bulk.p99() as f64 / 1e3),
        ]);
    }
    emit("exp_ablation_islip_iters", &t1);

    // --- (2) Solstice configuration budget. ---
    // Demand spanning 3 disjoint permutations: fewer entries than 3
    // cannot cover it within one epoch.
    let mut w = vec![0.0; N * N];
    for i in 0..N {
        for k in [1usize, 5, 9] {
            w[i * N + (i + k) % N] = 1.0;
        }
    }
    let matrix = TrafficMatrix::from_weights(N, w).unwrap();
    let budgets: Vec<usize> = vec![1, 2, 3, 4, 6, 8];
    // Long epochs (400 µs) make within-epoch coverage matter: with short
    // epochs a single-configuration scheduler simply serves a different
    // permutation each epoch and the budget is moot.
    let results = parallel_map(budgets.clone(), |b| {
        run(
            Box::new(SolsticeScheduler::new(b as u32)),
            matrix.clone(),
            0.6,
            Some(SimDuration::from_micros(400)),
            b,
        )
    });
    let mut t2 = Table::new(
        "E10b: configurations per epoch (3-permutation demand @ 0.6, 400us epochs)",
        &["max entries", "thru(Gbps)", "reconfigs", "duty%", "p99 bulk(us)"],
    );
    for (b, r) in budgets.iter().zip(results.iter()) {
        t2.row(vec![
            b.to_string(),
            format!("{:.2}", r.throughput_gbps()),
            r.ocs.reconfigurations.to_string(),
            format!("{:.1}", r.ocs_duty_cycle() * 100.0),
            format!("{:.1}", r.latency_bulk.p99() as f64 / 1e3),
        ]);
    }
    emit("exp_ablation_entries", &t2);

    // --- (3) Epoch length (duty cycle vs queueing delay). ---
    let epochs: Vec<SimDuration> = vec![
        SimDuration::from_micros(20),
        SimDuration::from_micros(50),
        SimDuration::from_micros(100),
        SimDuration::from_micros(400),
        SimDuration::from_millis(2),
    ];
    let results = parallel_map(epochs.clone(), |e| {
        run(
            Box::new(IslipScheduler::new(N, 3)),
            TrafficMatrix::uniform(N),
            0.6,
            Some(e),
            4,
        )
    });
    let mut t3 = Table::new(
        "E10c: epoch length (uniform @ 0.6, reconfig 1us)",
        &["epoch", "duty%", "thru(Gbps)", "p99 bulk(us)", "peak switch buf"],
    );
    for (e, r) in epochs.iter().zip(results.iter()) {
        t3.row(vec![
            e.to_string(),
            format!("{:.1}", r.ocs_duty_cycle() * 100.0),
            format!("{:.2}", r.throughput_gbps()),
            format!("{:.1}", r.latency_bulk.p99() as f64 / 1e3),
            xds_metrics::fmt_bytes(r.peak_switch_buffer),
        ]);
    }
    emit("exp_ablation_epoch", &t3);

    println!(
        "findings: (a) throughput saturates by ~log2(n) iterations — extra\n\
         rounds cost cycles for nothing; (b) with stretchable slots the\n\
         configuration budget barely moves *throughput* (under-budgeted\n\
         schedulers serve fewer permutations per epoch but hold them longer,\n\
         self-balancing across epochs) — the budget is a tail-latency knob;\n\
         (c) short epochs burn capacity on reconfiguration (low duty), long\n\
         epochs trade it for queueing delay and buffer — the sweet spot sits\n\
         at 10-50x the switching time, which is why fast switching needs a\n\
         fast scheduler."
    );
}
