//! **E10 (ablations)**: the design choices DESIGN.md calls out, isolated.
//!
//! 1. **iSLIP iteration count** — how many request–grant–accept rounds
//!    does the hardware need? (Each costs `2·⌈log₂n⌉+2` cycles.)
//! 2. **Decomposition budget** — how many OCS configurations per epoch
//!    are worth their dark windows (Solstice's `max_entries`)?
//! 3. **Epoch length** — the duty-cycle vs responsiveness trade: long
//!    epochs amortize reconfiguration but add queueing delay.
//!
//! Each ablation is a thin `xds-scenario` sweep (a schedulers axis, a
//! coupled scheduler+budget spec list, and an epochs axis respectively).
//!
//! ```sh
//! cargo run --release -p xds-bench --bin exp_ablation
//! ```

use xds_bench::{banner, emit, emit_sweep};
use xds_hw::{ClockDomain, HwAlgo};
use xds_metrics::Table;
use xds_scenario::{ScenarioSpec, SchedulerKind, SweepExecutor, SweepGrid, TrafficPattern};
use xds_sim::SimDuration;

const N: usize = 16;

fn base(name: &str, load: f64) -> ScenarioSpec {
    ScenarioSpec::new(name)
        .with_ports(N)
        .with_load(load)
        .with_duration(SimDuration::from_millis(15))
        .with_seed(81)
}

fn main() {
    banner(
        "E10",
        "ablations: iSLIP iterations, decomposition budget, epoch length",
        "16x16 @ 10G, bulk flows; each table isolates one design parameter.",
    );

    // --- (1) iSLIP iterations. ---
    let iters: Vec<u32> = vec![1, 2, 3, 4, 6];
    let grid = SweepGrid::new(base("e10a", 0.8)).schedulers(
        iters
            .iter()
            .map(|&i| SchedulerKind::Islip { iterations: i })
            .collect(),
    );
    let results = SweepExecutor::new().run(grid.specs());
    let mut t1 = Table::new(
        "E10a: iSLIP iteration count (uniform @ 0.8)",
        &[
            "iterations",
            "hw cycles",
            "hw latency",
            "thru(Gbps)",
            "p99 bulk(us)",
        ],
    );
    for (j, &i) in iters.iter().enumerate() {
        let Some(r) = results.report(j) else { continue };
        let cycles = HwAlgo::Islip { iterations: i }.schedule_cycles(N);
        t1.row(vec![
            i.to_string(),
            cycles.to_string(),
            ClockDomain::NETFPGA_SUME.cycles_to_time(cycles).to_string(),
            format!("{:.2}", r.throughput_gbps()),
            format!("{:.1}", r.latency_bulk.p99() as f64 / 1e3),
        ]);
    }
    emit("exp_ablation_islip_iters", &t1);
    emit_sweep("exp_ablation_islip_points", "E10a point dump", &results);

    // --- (2) Solstice configuration budget. ---
    // Demand spanning 3 disjoint permutations: fewer entries than 3
    // cannot cover it within one epoch. The scheduler's permutation
    // budget and the runtime's entry budget move together — a coupled
    // axis, so the points are derived from the base. Long epochs (400 µs)
    // make within-epoch coverage matter.
    let budgets: Vec<usize> = vec![1, 2, 3, 4, 6, 8];
    let specs: Vec<ScenarioSpec> = budgets
        .iter()
        .map(|&b| {
            base("e10b", 0.6)
                .with_name(format!("e10b/me{b}"))
                .with_pattern(TrafficPattern::MultiRing {
                    shifts: vec![1, 5, 9],
                })
                .with_scheduler(SchedulerKind::Solstice { perms: b as u32 })
                .with_epoch(SimDuration::from_micros(400))
                .with_max_entries(b)
        })
        .collect();
    let results = SweepExecutor::new().run(specs);
    let mut t2 = Table::new(
        "E10b: configurations per epoch (3-permutation demand @ 0.6, 400us epochs)",
        &[
            "max entries",
            "thru(Gbps)",
            "reconfigs",
            "duty%",
            "p99 bulk(us)",
        ],
    );
    for (j, &b) in budgets.iter().enumerate() {
        let Some(r) = results.report(j) else { continue };
        t2.row(vec![
            b.to_string(),
            format!("{:.2}", r.throughput_gbps()),
            r.ocs.reconfigurations.to_string(),
            format!("{:.1}", r.ocs_duty_cycle() * 100.0),
            format!("{:.1}", r.latency_bulk.p99() as f64 / 1e3),
        ]);
    }
    emit("exp_ablation_entries", &t2);
    emit_sweep("exp_ablation_entries_points", "E10b point dump", &results);

    // --- (3) Epoch length (duty cycle vs queueing delay). ---
    let epochs: Vec<SimDuration> = vec![
        SimDuration::from_micros(20),
        SimDuration::from_micros(50),
        SimDuration::from_micros(100),
        SimDuration::from_micros(400),
        SimDuration::from_millis(2),
    ];
    let grid = SweepGrid::new(base("e10c", 0.6)).epochs(epochs.clone());
    let results = SweepExecutor::new().run(grid.specs());
    let mut t3 = Table::new(
        "E10c: epoch length (uniform @ 0.6, reconfig 1us)",
        &[
            "epoch",
            "duty%",
            "thru(Gbps)",
            "p99 bulk(us)",
            "peak switch buf",
        ],
    );
    for (j, e) in epochs.iter().enumerate() {
        let Some(r) = results.report(j) else { continue };
        t3.row(vec![
            e.to_string(),
            format!("{:.1}", r.ocs_duty_cycle() * 100.0),
            format!("{:.2}", r.throughput_gbps()),
            format!("{:.1}", r.latency_bulk.p99() as f64 / 1e3),
            xds_metrics::fmt_bytes(r.peak_switch_buffer),
        ]);
    }
    emit("exp_ablation_epoch", &t3);
    emit_sweep("exp_ablation_epoch_points", "E10c point dump", &results);

    println!(
        "findings: (a) throughput saturates by ~log2(n) iterations — extra\n\
         rounds cost cycles for nothing; (b) with stretchable slots the\n\
         configuration budget barely moves *throughput* (under-budgeted\n\
         schedulers serve fewer permutations per epoch but hold them longer,\n\
         self-balancing across epochs) — the budget is a tail-latency knob;\n\
         (c) short epochs burn capacity on reconfiguration (low duty), long\n\
         epochs trade it for queueing delay and buffer — the sweet spot sits\n\
         at 10-50x the switching time, which is why fast switching needs a\n\
         fast scheduler."
    );
}
