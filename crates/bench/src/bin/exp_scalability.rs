//! **E7**: scalability of the scheduling logic with port count.
//!
//! Two views of §3's feasibility question:
//! 1. the *hardware* model — cycles and wall-clock latency per decision at
//!    the NetFPGA-SUME's 200 MHz, plus whether the design still fits the
//!    Virtex-7 690T;
//! 2. the *software* reality — measured wall-clock of each algorithm on
//!    this machine's CPU (the honest "software scheduler" data point).
//!
//! ```sh
//! cargo run --release -p xds-bench --bin exp_scalability
//! ```

use std::time::Instant;

use xds_bench::{banner, emit};
use xds_core::demand::DemandMatrix;
use xds_core::sched::*;
use xds_hw::{resources, ClockDomain, HwAlgo, SUME_CAPACITY};
use xds_metrics::Table;
use xds_sim::{BitRate, SimDuration, SimRng, SimTime};

const PORTS: [usize; 6] = [8, 16, 32, 64, 128, 256];

fn hotspot_demand(n: usize, seed: u64) -> DemandMatrix {
    let mut rng = SimRng::new(seed);
    let mut d = DemandMatrix::zero(n);
    for i in 0..n {
        // a hot ring plus random background
        d.set(i, (i + 1) % n, 1_000_000 + rng.below(1_000_000));
        for _ in 0..4 {
            let j = rng.below_usize(n);
            if j != i {
                d.add(i, j, rng.below(100_000));
            }
        }
    }
    d
}

fn ctx(n: usize) -> ScheduleCtx {
    let _ = n;
    ScheduleCtx {
        now: SimTime::ZERO,
        line_rate: BitRate::GBPS_10,
        reconfig: SimDuration::from_micros(1),
        epoch: SimDuration::from_micros(100),
        max_entries: 4,
    }
}

fn make(name: &str, n: usize) -> Box<dyn Scheduler> {
    match name {
        "islip_i3" => Box::new(IslipScheduler::new(n, 3)),
        "wavefront" => Box::new(WavefrontScheduler::new(n)),
        "greedy_lqf" => Box::new(GreedyLqfScheduler::new()),
        "hungarian" => Box::new(HungarianScheduler::new()),
        "solstice_p4" => Box::new(SolsticeScheduler::new(4)),
        other => panic!("unknown {other}"),
    }
}

const ALGOS: [&str; 5] = [
    "islip_i3",
    "wavefront",
    "greedy_lqf",
    "hungarian",
    "solstice_p4",
];

fn main() {
    banner(
        "E7",
        "scheduling-logic scalability with port count",
        "hardware cycle model @ 200 MHz + SUME fit check, and measured\n\
         software wall-clock per decision on this host.",
    );

    // --- Hardware model table. ---
    let mut hw = Table::new(
        "E7a: hardware decision latency @ 200 MHz (cycles | ns) and SUME fit (1KB VOQs @ 64p)",
        &[
            "algo",
            "n=8",
            "n=16",
            "n=32",
            "n=64",
            "n=128",
            "n=256",
            "fits SUME @64",
        ],
    );
    let hw_algos: Vec<(&str, HwAlgo)> = vec![
        ("tdma", HwAlgo::Tdma),
        ("islip_i3", HwAlgo::Islip { iterations: 3 }),
        ("wavefront", HwAlgo::Wavefront),
        ("greedy_lqf", HwAlgo::GreedyLqf),
        ("bvn_p4", HwAlgo::Bvn { perms: 4 }),
        ("hungarian", HwAlgo::Hungarian),
    ];
    for (name, algo) in &hw_algos {
        let mut row = vec![name.to_string()];
        for &n in &PORTS {
            let cyc = algo.schedule_cycles(n);
            let ns = ClockDomain::NETFPGA_SUME.cycles_to_time(cyc);
            row.push(format!("{cyc}cy|{ns}"));
        }
        // 1 KB per VOQ: the nanosecond-switching buffering regime of
        // Figure 1 (a millisecond regime needs ~MB per VOQ — see the
        // resources module's tests for that contrast).
        let est = resources::full_design(*algo, 64, 1_024);
        row.push(format!(
            "{} ({:.0}%)",
            if est.fits(SUME_CAPACITY) { "yes" } else { "NO" },
            est.worst_utilization(SUME_CAPACITY) * 100.0
        ));
        hw.row(row);
    }
    emit("exp_scalability_hw", &hw);

    // --- Software wall-clock table (measured on this CPU). ---
    let mut sw = Table::new(
        "E7b: measured software schedule() wall-clock per decision (us, this host)",
        &["algo", "n=8", "n=16", "n=32", "n=64", "n=128", "n=256"],
    );
    for name in ALGOS {
        let mut row = vec![name.to_string()];
        for &n in &PORTS {
            let demand = hotspot_demand(n, 17);
            let c = ctx(n);
            let mut s = make(name, n);
            // Warm up, then measure.
            for _ in 0..3 {
                let _ = s.schedule(&demand, &c);
            }
            let iters = if n >= 128 { 20 } else { 200 };
            let t0 = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(s.schedule(std::hint::black_box(&demand), &c));
            }
            let us = t0.elapsed().as_secs_f64() * 1e6 / iters as f64;
            row.push(format!("{us:.1}"));
        }
        sw.row(row);
    }
    emit("exp_scalability_sw", &sw);

    println!(
        "expected shape: hardware iSLIP grows logarithmically (10 -> 20 cycles\n\
         over 8 -> 256 ports: well under a microsecond) while Hungarian's n^3\n\
         blows past line-rate budgets by 64 ports — and the measured software\n\
         wall-clock is orders of magnitude above the hardware model even for\n\
         the friendly algorithms, which is the paper's entire point."
    );
}
