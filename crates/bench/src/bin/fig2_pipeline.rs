//! **F2 — Figure 2**: the proposed implementation, exercised end to end.
//!
//! Reproduces the architecture walk-through: processing logic (classify →
//! VOQ → requests), scheduling logic (demand estimation → algorithm →
//! grants), switching logic (OCS configured *before* grants execute; EPS
//! carries residuals). Prints the hardware latency budget per partition
//! and proves the pipeline invariants on a live run.
//!
//! ```sh
//! cargo run --release -p xds-bench --bin fig2_pipeline
//! ```

use xds_bench::{banner, emit, standard_fast};
use xds_core::demand::MirrorEstimator;
use xds_core::node::Workload;
use xds_core::runtime::SimBuilder;
use xds_core::sched::IslipScheduler;
use xds_hw::{ClockDomain, HwAlgo, HwSchedulerModel};
use xds_metrics::Table;
use xds_net::PortNo;
use xds_sim::{BitRate, SimDuration, SimRng, SimTime};
use xds_traffic::{CbrApp, FlowGenerator, FlowSizeDist, TrafficMatrix};

fn main() {
    let n = 8;
    banner(
        "F2",
        "Figure 2 — processing / scheduling / switching logic pipeline",
        "8x8 hybrid ToR, hardware iSLIP scheduler, mixed workload; per-stage\n\
         latency budget plus live invariants (configure-before-grant, zero\n\
         misrouting, residual traffic on the EPS).",
    );

    // --- Scheduling-logic latency budget (the hardware pipeline). ---
    let model = HwSchedulerModel::netfpga_sume(HwAlgo::Islip { iterations: 3 });
    let pipe = model.pipeline(n);
    let mut stage_table = Table::new(
        format!(
            "scheduling-logic pipeline @ {} MHz (n={n})",
            ClockDomain::NETFPGA_SUME.freq_hz() / 1_000_000
        ),
        &["stage", "cycles", "latency"],
    );
    for s in pipe.stages() {
        stage_table.row(vec![
            s.name.to_string(),
            s.cycles.to_string(),
            ClockDomain::NETFPGA_SUME
                .cycles_to_time(s.cycles)
                .to_string(),
        ]);
    }
    stage_table.row(vec![
        "TOTAL".into(),
        pipe.latency_cycles().to_string(),
        pipe.latency(ClockDomain::NETFPGA_SUME).to_string(),
    ]);
    emit("fig2_stage_budget", &stage_table);

    // --- Live run through all three partitions. ---
    let cfg = standard_fast(n, SimDuration::from_nanos(100));
    let flows = FlowGenerator::with_load(
        TrafficMatrix::hotspot(n, 2, 0.4, 0),
        FlowSizeDist::WebSearch,
        0.4,
        BitRate::GBPS_10,
        SimRng::new(7),
    );
    let apps = vec![CbrApp::voip(0, PortNo(1), PortNo(6), SimTime::ZERO)];
    let report = SimBuilder::new(cfg)
        .workload(Workload::flows(flows).with_apps(apps))
        .scheduler(Box::new(IslipScheduler::new(n, 3)))
        .estimator(Box::new(MirrorEstimator::new(n)))
        .build()
        .expect("valid testbed")
        .run(SimTime::from_millis(20));

    emit("fig2_run_summary", &report.summary_table());

    let mut inv = Table::new(
        "pipeline invariants (must all hold)",
        &["invariant", "value", "ok"],
    );
    let checks: Vec<(&str, String, bool)> = vec![
        (
            "grants only on live circuits (ocs rejects)",
            report.ocs.rejected.to_string(),
            report.ocs.rejected == 0,
        ),
        (
            "no sync violations in hardware placement",
            report.drops.sync_violation.to_string(),
            report.drops.sync_violation == 0,
        ),
        (
            "bulk rides circuits (ocs bytes)",
            report.delivered_ocs_bytes.to_string(),
            report.delivered_ocs_bytes > 0,
        ),
        (
            "residual rides the EPS (eps bytes)",
            report.delivered_eps_bytes.to_string(),
            report.delivered_eps_bytes > 0,
        ),
        (
            "host buffers stay empty (fast scheduling)",
            report.peak_host_buffer.to_string(),
            report.peak_host_buffer == 0,
        ),
        (
            "scheduler ran every epoch",
            report.decisions.to_string(),
            report.decisions > 500,
        ),
    ];
    let mut all_ok = true;
    for (name, value, ok) in checks {
        all_ok &= ok;
        inv.row(vec![
            name.to_string(),
            value,
            if ok { "yes" } else { "NO" }.to_string(),
        ]);
    }
    emit("fig2_invariants", &inv);
    println!(
        "figure-2 pipeline: {}",
        if all_ok {
            "ALL INVARIANTS HOLD"
        } else {
            "INVARIANT VIOLATION — investigate!"
        }
    );
}
