//! **E9**: the hybrid offload threshold — "the OCS is used to serve long
//! bursts of traffic and the EPS is used to serve the remaining traffic
//! and short bursts" (§1).
//!
//! Sweeping the c-Through-style offload threshold moves the boundary
//! between "long burst" and "residual": too low and mice thrash circuits,
//! too high and elephants crush the undersized EPS.
//!
//! ```sh
//! cargo run --release -p xds-bench --bin exp_hybrid
//! ```

use xds_bench::{banner, emit, parallel_map, standard_fast};
use xds_core::demand::MirrorEstimator;
use xds_core::node::Workload;
use xds_core::runtime::HybridSim;
use xds_core::sched::HotspotScheduler;
use xds_metrics::Table;
use xds_sim::{BitRate, SimDuration, SimRng, SimTime};
use xds_traffic::{FlowGenerator, FlowSizeDist, TrafficMatrix};

const N: usize = 16;

fn run_threshold(bulk_threshold: u64) -> Vec<String> {
    let cfg = standard_fast(N, SimDuration::from_micros(10));
    // The flow classifier uses the same threshold as the scheduler: flows
    // at or above it are OCS candidates.
    let gen = FlowGenerator::with_load(
        TrafficMatrix::uniform(N),
        FlowSizeDist::WebSearch,
        0.5,
        BitRate::GBPS_10,
        SimRng::new(71),
    )
    .with_bulk_threshold(bulk_threshold);
    let r = HybridSim::new(
        cfg,
        Workload::flows(gen),
        Box::new(HotspotScheduler::new(bulk_threshold / 2)),
        Box::new(MirrorEstimator::new(N)),
    )
    .run(SimTime::from_millis(40));

    let mice_p99 = r
        .fct_mice
        .as_ref()
        .map(|f| format!("{:.1}", f.p99_ns as f64 / 1e3))
        .unwrap_or_else(|| "-".into());
    let ele_mean = r
        .fct_elephant
        .as_ref()
        .map(|f| format!("{:.2}", f.mean_ns as f64 / 1e6))
        .unwrap_or_else(|| "-".into());
    vec![
        xds_metrics::fmt_bytes(bulk_threshold),
        format!("{:.1}", r.ocs_byte_share() * 100.0),
        format!("{:.2}", r.throughput_gbps()),
        mice_p99,
        ele_mean,
        r.drops.eps_full.to_string(),
        r.ocs.reconfigurations.to_string(),
    ]
}

fn main() {
    banner(
        "E9",
        "hybrid offload threshold study",
        "16x16, websearch @ 0.5, EPS at 1/10 line rate; the flow-size boundary\n\
         between EPS (short) and OCS (long bursts) swept across three decades.",
    );
    let thresholds: Vec<u64> = vec![
        10_000,
        50_000,
        100_000,
        500_000,
        2_000_000,
        10_000_000,
    ];
    let rows = parallel_map(thresholds, run_threshold);
    let mut table = Table::new(
        "E9: offload threshold sweep",
        &[
            "bulk threshold",
            "ocs byte share%",
            "thru(Gbps)",
            "mice p99 FCT(us)",
            "elephant mean FCT(ms)",
            "eps drops",
            "reconfigs",
        ],
    );
    for row in rows {
        table.row(row);
    }
    emit("exp_hybrid", &table);
    println!(
        "expected shape: the OCS byte share falls as the threshold rises; a\n\
         threshold near the mice/elephant knee (~100KB) keeps mice FCT low on\n\
         the EPS while elephants saturate circuits; pushing elephants onto the\n\
         1G EPS (10MB threshold) overflows it."
    );
}
