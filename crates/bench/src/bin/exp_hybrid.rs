//! **E9**: the hybrid offload threshold — "the OCS is used to serve long
//! bursts of traffic and the EPS is used to serve the remaining traffic
//! and short bursts" (§1).
//!
//! Sweeping the c-Through-style offload threshold moves the boundary
//! between "long burst" and "residual": too low and mice thrash circuits,
//! too high and elephants crush the undersized EPS. A thin wrapper over
//! `xds-scenario`: the classifier threshold and the scheduler threshold
//! are coupled, so the points are built directly from the base spec.
//!
//! ```sh
//! cargo run --release -p xds-bench --bin exp_hybrid
//! ```

use xds_bench::{banner, emit, emit_sweep};
use xds_metrics::Table;
use xds_scenario::{ScenarioSpec, SchedulerKind, SweepExecutor};
use xds_sim::SimDuration;
use xds_traffic::FlowSizeDist;

const N: usize = 16;

fn main() {
    banner(
        "E9",
        "hybrid offload threshold study",
        "16x16, websearch @ 0.5, EPS at 1/10 line rate; the flow-size boundary\n\
         between EPS (short) and OCS (long bursts) swept across three decades.",
    );
    let thresholds: Vec<u64> = vec![10_000, 50_000, 100_000, 500_000, 2_000_000, 10_000_000];

    let base = ScenarioSpec::new("e9")
        .with_ports(N)
        .with_sizes(FlowSizeDist::WebSearch)
        .with_load(0.5)
        .with_reconfig(SimDuration::from_micros(10))
        .with_duration(SimDuration::from_millis(40))
        .with_seed(71);
    // The flow classifier uses the swept threshold; the scheduler's
    // circuit-setup threshold tracks it at half — a coupled axis, so the
    // points are derived rather than cross-multiplied.
    let specs: Vec<ScenarioSpec> = thresholds
        .iter()
        .map(|&t| {
            base.clone()
                .with_name(format!("e9/bt{t}"))
                .with_bulk_threshold(t)
                .with_scheduler(SchedulerKind::Hotspot {
                    threshold_bytes: t / 2,
                })
        })
        .collect();
    let results = SweepExecutor::new().run(specs);

    let mut table = Table::new(
        "E9: offload threshold sweep",
        &[
            "bulk threshold",
            "ocs byte share%",
            "thru(Gbps)",
            "mice p99 FCT(us)",
            "elephant mean FCT(ms)",
            "eps drops",
            "reconfigs",
        ],
    );
    for (i, &t) in thresholds.iter().enumerate() {
        let Some(r) = results.report(i) else { continue };
        let mice_p99 = r
            .fct_mice
            .as_ref()
            .map(|f| format!("{:.1}", f.p99_ns as f64 / 1e3))
            .unwrap_or_else(|| "-".into());
        let ele_mean = r
            .fct_elephant
            .as_ref()
            .map(|f| format!("{:.2}", f.mean_ns / 1e6))
            .unwrap_or_else(|| "-".into());
        table.row(vec![
            xds_metrics::fmt_bytes(t),
            format!("{:.1}", r.ocs_byte_share() * 100.0),
            format!("{:.2}", r.throughput_gbps()),
            mice_p99,
            ele_mean,
            r.drops.eps_full.to_string(),
            r.ocs.reconfigurations.to_string(),
        ]);
    }
    emit("exp_hybrid", &table);
    emit_sweep("exp_hybrid_points", "E9 point dump", &results);
    println!(
        "expected shape: the OCS byte share falls as the threshold rises; a\n\
         threshold near the mice/elephant knee (~100KB) keeps mice FCT low on\n\
         the EPS while elephants saturate circuits; pushing elephants onto the\n\
         1G EPS (10MB threshold) overflows it."
    );
}
