//! **E5**: the scheduler face-off the framework exists for.
//!
//! §3: the framework enables "exploration and evaluation of novel hybrid
//! schedulers". Nine algorithms × four traffic patterns × a load sweep;
//! throughput-vs-load plus tail latency under the hotspot pattern.
//!
//! ```sh
//! cargo run --release -p xds-bench --bin exp_algorithms
//! ```

use xds_bench::{banner, emit, parallel_map, standard_fast};
use xds_core::demand::MirrorEstimator;
use xds_core::node::Workload;
use xds_core::report::RunReport;
use xds_core::runtime::HybridSim;
use xds_core::sched::*;
use xds_metrics::Table;
use xds_sim::{BitRate, SimDuration, SimRng, SimTime};
use xds_traffic::{FlowGenerator, FlowSizeDist, TrafficMatrix};

const N: usize = 16;
const LOADS: [f64; 5] = [0.1, 0.3, 0.5, 0.7, 0.9];

fn scheduler_by_name(name: &str) -> Box<dyn Scheduler> {
    match name {
        "tdma" => Box::new(TdmaScheduler::new(N)),
        "islip" => Box::new(IslipScheduler::new(N, 3)),
        "pim" => Box::new(PimScheduler::new(N, 3, SimRng::new(1234))),
        "rrm" => Box::new(RrmScheduler::new(N, 3)),
        "wavefront" => Box::new(WavefrontScheduler::new(N)),
        "greedy_lqf" => Box::new(GreedyLqfScheduler::new()),
        "hungarian" => Box::new(HungarianScheduler::new()),
        "bvn" => Box::new(BvnScheduler::new(4)),
        "solstice" => Box::new(SolsticeScheduler::new(4)),
        "eps_only" => Box::new(EpsOnlyScheduler::new()),
        other => panic!("unknown scheduler {other}"),
    }
}

const SCHEDULERS: [&str; 10] = [
    "eps_only",
    "tdma",
    "rrm",
    "pim",
    "islip",
    "wavefront",
    "greedy_lqf",
    "hungarian",
    "bvn",
    "solstice",
];

fn pattern(name: &str) -> TrafficMatrix {
    match name {
        "uniform" => TrafficMatrix::uniform(N),
        "permutation" => TrafficMatrix::permutation(N, 5),
        "hotspot" => TrafficMatrix::hotspot(N, 4, 0.6, 0),
        "skewed" => {
            let mut rng = SimRng::new(9);
            TrafficMatrix::zipf(N, 1.1, &mut rng)
        }
        other => panic!("unknown pattern {other}"),
    }
}

fn run_cell(sched: &str, pat: &str, load: f64) -> RunReport {
    let cfg = standard_fast(N, SimDuration::from_micros(1));
    // Keep the busiest port admissible: scale offered load by the
    // pattern's imbalance so "load" means per-port utilization.
    let m = pattern(pat);
    let eff_load = load / m.imbalance();
    let w = Workload::flows(FlowGenerator::with_load(
        m,
        FlowSizeDist::Fixed(150_000),
        eff_load,
        BitRate::GBPS_10,
        SimRng::new(31),
    ));
    HybridSim::new(
        cfg,
        w,
        scheduler_by_name(sched),
        Box::new(MirrorEstimator::new(N)),
    )
    .run(SimTime::from_millis(15))
}

fn main() {
    banner(
        "E5",
        "scheduling-algorithm face-off",
        "16x16 @ 10G, bulk flows; throughput vs offered load per algorithm and\n\
         traffic pattern (load normalized to the busiest port).",
    );

    for pat in ["uniform", "permutation", "hotspot", "skewed"] {
        let cells: Vec<(&str, f64)> = SCHEDULERS
            .iter()
            .flat_map(|&s| LOADS.iter().map(move |&l| (s, l)))
            .collect();
        let reports = parallel_map(cells, |(s, l)| run_cell(s, pat, l));

        let mut headers: Vec<String> = vec!["scheduler".into()];
        headers.extend(LOADS.iter().map(|l| format!("thru@{l:.1}")));
        let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
        let mut table = Table::new(
            format!("E5: delivered throughput (Gbps) — pattern = {pat}"),
            &header_refs,
        );
        for (i, s) in SCHEDULERS.iter().enumerate() {
            let mut row = vec![s.to_string()];
            for j in 0..LOADS.len() {
                row.push(format!("{:.2}", reports[i * LOADS.len() + j].throughput_gbps()));
            }
            table.row(row);
        }
        emit(&format!("exp_algorithms_{pat}"), &table);

        if pat == "hotspot" {
            let mut lat = Table::new(
                "E5: p99 bulk latency (us) at load 0.5 — pattern = hotspot",
                &["scheduler", "p99 bulk(us)", "ocs reconfigs"],
            );
            for (i, s) in SCHEDULERS.iter().enumerate() {
                let r = &reports[i * LOADS.len() + 2];
                lat.row(vec![
                    s.to_string(),
                    format!("{:.1}", r.latency_bulk.p99() as f64 / 1e3),
                    r.ocs.reconfigurations.to_string(),
                ]);
            }
            emit("exp_algorithms_hotspot_latency", &lat);
        }
    }
    println!(
        "expected shape: demand-aware matchers (islip/wavefront/greedy/\n\
         hungarian/bvn/solstice) track offered load; tdma wastes slots off the\n\
         diagonal of skewed patterns; rrm trails islip (pointer sync); eps_only\n\
         saturates at the packet switch capacity."
    );
}
