//! **E5**: the scheduler face-off the framework exists for.
//!
//! §3: the framework enables "exploration and evaluation of novel hybrid
//! schedulers". Ten algorithms × four traffic patterns × a load sweep;
//! throughput-vs-load plus tail latency under the hotspot pattern. A thin
//! wrapper over `xds-scenario`: one grid per pattern, tables pivoted from
//! the sweep results.
//!
//! ```sh
//! cargo run --release -p xds-bench --bin exp_algorithms
//! ```

use xds_bench::{banner, emit, emit_sweep};
use xds_metrics::Table;
use xds_scenario::{ScenarioSpec, SchedulerKind, SweepExecutor, SweepGrid, TrafficPattern};
use xds_sim::SimDuration;

const N: usize = 16;
const LOADS: [f64; 5] = [0.1, 0.3, 0.5, 0.7, 0.9];

fn patterns() -> Vec<(&'static str, TrafficPattern)> {
    vec![
        ("uniform", TrafficPattern::Uniform),
        ("permutation", TrafficPattern::Permutation { shift: 5 }),
        (
            "hotspot",
            TrafficPattern::Hotspot {
                pairs: 4,
                fraction: 0.6,
                offset: 0,
            },
        ),
        ("skewed", TrafficPattern::Zipf { exponent: 1.1 }),
    ]
}

fn main() {
    banner(
        "E5",
        "scheduling-algorithm face-off",
        "16x16 @ 10G, bulk flows; throughput vs offered load per algorithm and\n\
         traffic pattern (load normalized to the busiest port).",
    );

    let roster = SchedulerKind::roster();
    for (pat_name, pattern) in patterns() {
        let base = ScenarioSpec::new(format!("e5-{pat_name}"))
            .with_ports(N)
            .with_pattern(pattern)
            .with_duration(SimDuration::from_millis(15))
            .with_seed(31);
        let grid = SweepGrid::new(base)
            .loads(LOADS.to_vec())
            .schedulers(roster.clone());
        let results = SweepExecutor::new().run(grid.specs());

        // Pivot: rows = scheduler, columns = load, cell = throughput.
        // Grid order is loads-outer, schedulers-inner (last axis fastest).
        let mut headers: Vec<String> = vec!["scheduler".into()];
        headers.extend(LOADS.iter().map(|l| format!("thru@{l:.1}")));
        let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
        let mut table = Table::new(
            format!("E5: delivered throughput (Gbps) — pattern = {pat_name}"),
            &header_refs,
        );
        for (si, s) in roster.iter().enumerate() {
            let mut row = vec![s.label().to_string()];
            for li in 0..LOADS.len() {
                let cell = results
                    .report(li * roster.len() + si)
                    .map(|r| format!("{:.2}", r.throughput_gbps()))
                    .unwrap_or_else(|| "-".into());
                row.push(cell);
            }
            table.row(row);
        }
        emit(&format!("exp_algorithms_{pat_name}"), &table);
        emit_sweep(
            &format!("exp_algorithms_{pat_name}_points"),
            &format!("E5 point dump — pattern = {pat_name}"),
            &results,
        );

        if pat_name == "hotspot" {
            let mut lat = Table::new(
                "E5: p99 bulk latency (us) at load 0.5 — pattern = hotspot",
                &["scheduler", "p99 bulk(us)", "ocs reconfigs"],
            );
            for (si, s) in roster.iter().enumerate() {
                if let Some(r) = results.report(2 * roster.len() + si) {
                    lat.row(vec![
                        s.label().to_string(),
                        format!("{:.1}", r.latency_bulk.p99() as f64 / 1e3),
                        r.ocs.reconfigurations.to_string(),
                    ]);
                }
            }
            emit("exp_algorithms_hotspot_latency", &lat);
        }
    }
    println!(
        "expected shape: demand-aware matchers (islip/wavefront/greedy/\n\
         hungarian/bvn/solstice) track offered load; tdma wastes slots off the\n\
         diagonal of skewed patterns; rrm trails islip (pointer sync); eps_only\n\
         saturates at the packet switch capacity."
    );
}
