//! **E4**: VOIP latency & jitter under slow vs fast scheduling.
//!
//! §2: slow scheduling "can increase the overall traffic latency and
//! jitter of widely used applications (i.e., VOIP, multiuser gaming
//! etc.) and decrease the user quality of experience."
//!
//! Eight accelerated VOIP legs cross the switch over a bulk background at
//! three load points, under: fast hardware scheduling, slow software
//! scheduling, and slow software scheduling with interactive traffic
//! gated behind grants (the pathological configuration).
//!
//! ```sh
//! cargo run --release -p xds-bench --bin exp_voip_jitter
//! ```

use xds_bench::{banner, emit, parallel_map, standard_fast, standard_slow};
use xds_core::config::NodeConfig;
use xds_core::demand::MirrorEstimator;
use xds_core::node::Workload;
use xds_core::report::RunReport;
use xds_core::runtime::HybridSim;
use xds_core::sched::{HotspotScheduler, IslipScheduler, Scheduler};
use xds_metrics::Table;
use xds_net::PortNo;
use xds_sim::{BitRate, SimDuration, SimRng, SimTime};
use xds_traffic::{CbrApp, FlowGenerator, FlowSizeDist, TrafficMatrix};

const N: usize = 16;

fn apps() -> Vec<CbrApp> {
    (0..8u16)
        .map(|i| {
            let mut a = CbrApp::voip(
                i as u64,
                PortNo(i),
                PortNo(i + 8),
                SimTime::from_micros(50 * i as u64),
            );
            a.interval = SimDuration::from_millis(1); // accelerated G.711
            a
        })
        .collect()
}

fn workload(load: f64) -> Workload {
    Workload::flows(FlowGenerator::with_load(
        TrafficMatrix::uniform(N),
        FlowSizeDist::WebSearch,
        load,
        BitRate::GBPS_10,
        SimRng::new(21),
    ))
    .with_apps(apps())
}

fn run(cfg: NodeConfig, sched: Box<dyn Scheduler>, load: f64) -> RunReport {
    HybridSim::new(cfg, workload(load), sched, Box::new(MirrorEstimator::new(N)))
        .run(SimTime::from_millis(80))
}

fn main() {
    banner(
        "E4",
        "VOIP latency and jitter: slow vs fast scheduling",
        "16x16, 8 VOIP legs over websearch background. RFC 3550 jitter is the\n\
         metric VOIP endpoints actually compute.",
    );

    let loads = [0.2, 0.5, 0.7];
    let mut table = Table::new(
        "E4: interactive latency/jitter under scheduler placements",
        &[
            "configuration",
            "load",
            "p50 lat(us)",
            "p99 lat(us)",
            "jitter mean(us)",
            "jitter max(us)",
            "delivered",
            "sync drops",
        ],
    );

    type Cell = (&'static str, f64);
    let cells: Vec<Cell> = ["fast-hw", "slow-sw", "slow-sw-gated"]
        .iter()
        .flat_map(|&c| loads.iter().map(move |&l| (c, l)))
        .collect();
    let reports = parallel_map(cells.clone(), |(kind, load)| {
        match kind {
            "fast-hw" => {
                let cfg = standard_fast(N, SimDuration::from_nanos(100));
                run(cfg, Box::new(IslipScheduler::new(N, 3)), load)
            }
            "slow-sw" => {
                let cfg = standard_slow(N, SimDuration::from_millis(1));
                run(cfg, Box::new(HotspotScheduler::new(100_000)), load)
            }
            _ => {
                let mut cfg = standard_slow(N, SimDuration::from_millis(1));
                cfg.voip_on_ocs = true;
                run(cfg, Box::new(HotspotScheduler::new(100_000)), load)
            }
        }
    });

    for ((kind, load), r) in cells.iter().zip(reports.iter()) {
        table.row(vec![
            kind.to_string(),
            format!("{load:.1}"),
            format!("{:.1}", r.latency_interactive.p50() as f64 / 1e3),
            format!("{:.1}", r.latency_interactive.p99() as f64 / 1e3),
            format!("{:.1}", r.voip_jitter_mean_ns.unwrap_or(0.0) / 1e3),
            format!("{:.1}", r.voip_jitter_max_ns.unwrap_or(0.0) / 1e3),
            r.latency_interactive.count().to_string(),
            r.drops.sync_violation.to_string(),
        ]);
    }
    emit("exp_voip_jitter", &table);
    println!(
        "expected shape: fast-hw keeps p99 and jitter in the microseconds at\n\
         every load; slow-sw inflates them via EPS contention and skew drops;\n\
         gating VOIP behind millisecond demand-thresholded grants is\n\
         catastrophic — thin interactive VOQs may never clear the offload\n\
         threshold and starve outright (delivered=0)."
    );
}
