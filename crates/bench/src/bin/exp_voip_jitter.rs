//! **E4**: VOIP latency & jitter under slow vs fast scheduling.
//!
//! §2: slow scheduling "can increase the overall traffic latency and
//! jitter of widely used applications (i.e., VOIP, multiuser gaming
//! etc.) and decrease the user quality of experience."
//!
//! Eight accelerated VOIP legs cross the switch over a bulk background at
//! three load points, under: fast hardware scheduling, slow software
//! scheduling, and slow software scheduling with interactive traffic
//! gated behind grants (the pathological configuration). A thin wrapper
//! over `xds-scenario`: three placement configurations × a loads axis.
//!
//! ```sh
//! cargo run --release -p xds-bench --bin exp_voip_jitter
//! ```

use xds_bench::{banner, emit, emit_sweep};
use xds_metrics::Table;
use xds_scenario::{
    AppMix, PlacementKind, ScenarioSpec, SchedulerKind, SwModelKind, SweepExecutor, SyncSpec,
};
use xds_sim::SimDuration;
use xds_traffic::FlowSizeDist;

const N: usize = 16;
const LOADS: [f64; 3] = [0.2, 0.5, 0.7];

fn base(kind: &str, load: f64) -> ScenarioSpec {
    let spec = ScenarioSpec::new(format!("e4/{kind}/load{load:.1}"))
        .with_ports(N)
        .with_sizes(FlowSizeDist::WebSearch)
        .with_load(load)
        .with_apps(AppMix::Voip {
            legs: 8,
            interval: SimDuration::from_millis(1), // accelerated G.711
        })
        .with_duration(SimDuration::from_millis(80))
        .with_seed(21);
    match kind {
        "fast-hw" => spec
            .with_reconfig(SimDuration::from_nanos(100))
            .with_placement(PlacementKind::Hardware),
        "slow-sw" | "slow-sw-gated" => spec
            .with_reconfig(SimDuration::from_millis(1))
            .with_placement(PlacementKind::Software {
                model: SwModelKind::KernelDriver,
                sync: SyncSpec::Ptp,
            })
            .with_scheduler(SchedulerKind::Hotspot {
                threshold_bytes: 100_000,
            })
            .with_voip_on_ocs(kind == "slow-sw-gated"),
        other => panic!("unknown configuration {other}"),
    }
}

fn main() {
    banner(
        "E4",
        "VOIP latency and jitter: slow vs fast scheduling",
        "16x16, 8 VOIP legs over websearch background. RFC 3550 jitter is the\n\
         metric VOIP endpoints actually compute.",
    );

    let kinds = ["fast-hw", "slow-sw", "slow-sw-gated"];
    let specs: Vec<ScenarioSpec> = kinds
        .iter()
        .flat_map(|&k| LOADS.iter().map(move |&l| base(k, l)))
        .collect();
    let results = SweepExecutor::new().run(specs);

    let mut table = Table::new(
        "E4: interactive latency/jitter under scheduler placements",
        &[
            "configuration",
            "load",
            "p50 lat(us)",
            "p99 lat(us)",
            "jitter mean(us)",
            "jitter max(us)",
            "delivered",
            "sync drops",
        ],
    );
    for (ki, kind) in kinds.iter().enumerate() {
        for (li, load) in LOADS.iter().enumerate() {
            let Some(r) = results.report(ki * LOADS.len() + li) else {
                continue;
            };
            table.row(vec![
                kind.to_string(),
                format!("{load:.1}"),
                format!("{:.1}", r.latency_interactive.p50() as f64 / 1e3),
                format!("{:.1}", r.latency_interactive.p99() as f64 / 1e3),
                format!("{:.1}", r.voip_jitter_mean_ns.unwrap_or(0.0) / 1e3),
                format!("{:.1}", r.voip_jitter_max_ns.unwrap_or(0.0) / 1e3),
                r.latency_interactive.count().to_string(),
                r.drops.sync_violation.to_string(),
            ]);
        }
    }
    emit("exp_voip_jitter", &table);
    emit_sweep("exp_voip_jitter_points", "E4 point dump", &results);
    println!(
        "expected shape: fast-hw keeps p99 and jitter in the microseconds at\n\
         every load; slow-sw inflates them via EPS contention and skew drops;\n\
         gating VOIP behind millisecond demand-thresholded grants is\n\
         catastrophic — thin interactive VOQs may never clear the offload\n\
         threshold and starve outright (delivered=0)."
    );
}
