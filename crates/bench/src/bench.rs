//! The reproducible perf baseline: `sweep bench`.
//!
//! Simulation cost is a first-class metric of this project — "as fast as
//! the hardware allows" is unfalsifiable without a trajectory — so this
//! module pins a catalogue subset (fixed scenarios, fixed seeds, fixed
//! durations) and measures **wall-clock and events/second per point**,
//! emitting a `BENCH_<date>.json` artifact every future PR can diff
//! against. Points run sequentially on one thread: the quantity under
//! test is the cost of one simulation, not sweep parallelism.
//!
//! The pinned subset spans the runtime's distinct hot paths:
//!
//! * `uniform` / `websearch` — fast-mode packet pump + EPS/OCS split;
//! * `uniform-ewma` / `uniform-countmin` — the non-mirror epoch path
//!   (ground-truth snapshot + L1 error pass) that the mirror points
//!   skip entirely;
//! * `churn` — demand estimation under matrix rotation;
//! * `hotspot-sw` — slow-mode host VOQs, control-channel grants;
//! * `scale-stress` at 128, 256, 512, 1024 and 2048 ports — multi-entry
//!   schedule execution at fabric scale; per-event memory traffic
//!   dominates up to 512, and at 1024 the per-epoch scheduling path
//!   itself becomes the quantity under test (each point also records a
//!   wall-clock phase split: estimate / decompose / apply). The two
//!   largest points run on the sharded core at K = n (one source row
//!   per shard): each window then drains one port's events against an
//!   L2-resident VOQ row instead of streaming the full n² bank, which
//!   is the locality optimization under test — on one CPU it beats the
//!   classic core ~1.5× at both rungs, and the win grows under cache
//!   pressure from co-tenants. Events and delivered bytes are
//!   shard-count-invariant by the core's determinism contract, so these
//!   points stay comparable to single-core baselines.
//!
//! `--smoke` shrinks every horizon ~20× so CI can prove the harness
//! itself still runs (seconds, not minutes) without producing numbers
//! anyone should compare.
//!
//! When the subset grows, older baselines lack the new points; the
//! aggregate `speedup` is therefore computed over the **matched**
//! points only (present in both runs), so adding a point never
//! mechanically inflates or deflates the trajectory.

use std::time::Instant;

use xds_scenario::{
    library, EstimatorKind, Fidelity, InstrProfile, PlacementKind, ScenarioSpec, SwModelKind,
    SyncSpec, TrafficPattern,
};
use xds_sim::SimDuration;

/// One measured point of the baseline.
#[derive(Debug, Clone)]
pub struct BenchPoint {
    /// Point name (`<scenario>/n<ports>`).
    pub name: String,
    /// Scheduler tag (parameterized).
    pub scheduler: String,
    /// Fabric port count.
    pub n_ports: usize,
    /// Simulated horizon.
    pub duration: SimDuration,
    /// Pinned seed.
    pub seed: u64,
    /// Events the simulation processed.
    pub events: u64,
    /// Wall-clock nanoseconds the point took (fastest repeat).
    pub wall_ns: u128,
    /// Total delivered bytes (sanity anchor: must not drift run-to-run).
    pub delivered_bytes: u64,
    /// Wall-clock ns the epoch path spent in request intake + demand
    /// estimation + error sampling (fastest repeat).
    pub phase_estimate_ns: u64,
    /// Wall-clock ns spent inside `Scheduler::schedule` — the
    /// decomposition/matching work that dominates large-fabric points.
    pub phase_decompose_ns: u64,
    /// Wall-clock ns spent executing grant bursts at slot activation.
    pub phase_apply_ns: u64,
}

impl BenchPoint {
    /// Simulation throughput in events per wall-clock second.
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        self.events as f64 * 1e9 / self.wall_ns as f64
    }
}

/// A completed baseline run.
#[derive(Debug, Clone)]
pub struct BenchRun {
    /// ISO date the run was taken (`YYYY-MM-DD`).
    pub date: String,
    /// `"full"` or `"smoke"`.
    pub mode: String,
    /// Runs per point; each point records its fastest (the documented
    /// fastest-of-N measurement method, as a flag instead of a by-hand
    /// loop).
    pub repeats: u32,
    /// Instrumentation profile the points ran under (`lean` is the
    /// default: the quantity under test is the simulation, not the
    /// observation; events/bytes are profile-invariant by contract).
    pub profile: String,
    /// Fidelity tier the points ran at (`exact` is the default; an
    /// estimate-tier bench measures the estimator's cost, and its
    /// numbers must never be diffed against an exact baseline — see
    /// [`Baseline::fidelity_mismatch_warning`]).
    pub fidelity: String,
    /// Per-point measurements, in catalogue order.
    pub points: Vec<BenchPoint>,
}

impl BenchRun {
    /// Total events across all points.
    pub fn total_events(&self) -> u64 {
        self.points.iter().map(|p| p.events).sum()
    }

    /// Total wall-clock nanoseconds across all points.
    pub fn total_wall_ns(&self) -> u128 {
        self.points.iter().map(|p| p.wall_ns).sum()
    }

    /// Aggregate events/second over the whole subset.
    pub fn events_per_sec(&self) -> f64 {
        let w = self.total_wall_ns();
        if w == 0 {
            return 0.0;
        }
        self.total_events() as f64 * 1e9 / w as f64
    }

    /// Aggregate speedup over the points present in **both** runs.
    /// Comparing intersection aggregates on *both sides* keeps the
    /// speedup meaningful when the pinned subset changes in either
    /// direction: a freshly added point has no baseline counterpart and
    /// a retired baseline point no longer weighs the denominator.
    pub fn matched_speedup(&self, baseline: &Baseline) -> MatchedSpeedup {
        let mut events = 0u64;
        let mut wall = 0u128;
        let mut base_events = 0u64;
        let mut base_wall = 0u128;
        let mut base_exact = true;
        let mut matched = 0usize;
        for p in &self.points {
            let Some(bp) = baseline.point(&p.name) else {
                continue;
            };
            matched += 1;
            events += p.events;
            wall += p.wall_ns;
            match (bp.events, bp.wall_ns) {
                (Some(e), Some(w)) => {
                    base_events += e;
                    base_wall += w;
                }
                _ => base_exact = false,
            }
        }
        let run_eps = if wall == 0 {
            0.0
        } else {
            events as f64 * 1e9 / wall as f64
        };
        // Hand-edited baselines may lack the raw counters; fall back to
        // the whole-subset aggregate rather than a partial sum (the
        // artifact then says so via `matched_baseline_exact`).
        let base_eps = if base_exact && base_wall > 0 {
            base_events as f64 * 1e9 / base_wall as f64
        } else {
            base_exact = false;
            baseline.total_events_per_sec
        };
        MatchedSpeedup {
            matched,
            run_events_per_sec: run_eps,
            baseline_events_per_sec: base_eps,
            baseline_exact: base_exact,
        }
    }

    /// Serializes the run (and, when given, the baseline it is being
    /// compared against) as the `BENCH_<date>.json` artifact.
    pub fn to_json(&self, baseline: Option<&Baseline>) -> String {
        use std::fmt::Write as _;
        let mut o = String::from("{\n");
        let _ = writeln!(o, "  \"schema\": \"xds-bench-v1\",");
        let _ = writeln!(o, "  \"date\": \"{}\",", self.date);
        let _ = writeln!(o, "  \"mode\": \"{}\",", self.mode);
        let _ = writeln!(o, "  \"repeats\": {},", self.repeats);
        let _ = writeln!(o, "  \"profile\": \"{}\",", self.profile);
        let _ = writeln!(o, "  \"fidelity\": \"{}\",", self.fidelity);
        o.push_str("  \"points\": [\n");
        for (i, p) in self.points.iter().enumerate() {
            let _ = write!(
                o,
                "    {{\"name\": \"{}\", \"scheduler\": \"{}\", \"n_ports\": {}, \
                 \"duration_ns\": {}, \"seed\": {}, \"events\": {}, \"wall_ns\": {}, \
                 \"events_per_sec\": {:.0}, \"delivered_bytes\": {}, \
                 \"phase_estimate_ns\": {}, \"phase_decompose_ns\": {}, \
                 \"phase_apply_ns\": {}",
                p.name,
                p.scheduler,
                p.n_ports,
                p.duration.as_nanos(),
                p.seed,
                p.events,
                p.wall_ns,
                p.events_per_sec(),
                p.delivered_bytes,
                p.phase_estimate_ns,
                p.phase_decompose_ns,
                p.phase_apply_ns
            );
            if let Some(b) = baseline {
                if let Some(base_eps) = b.point_events_per_sec(&p.name) {
                    let _ = write!(
                        o,
                        ", \"baseline_events_per_sec\": {base_eps:.0}, \"speedup\": {:.2}",
                        p.events_per_sec() / base_eps
                    );
                }
            }
            o.push('}');
            if i + 1 < self.points.len() {
                o.push(',');
            }
            o.push('\n');
        }
        o.push_str("  ],\n");
        let _ = writeln!(
            o,
            "  \"total\": {{\"events\": {}, \"wall_ns\": {}, \"events_per_sec\": {:.0}}}{}",
            self.total_events(),
            self.total_wall_ns(),
            self.events_per_sec(),
            if baseline.is_some() { "," } else { "" }
        );
        if let Some(b) = baseline {
            let m = self.matched_speedup(b);
            let _ = write!(
                o,
                "  \"baseline\": {{\"date\": \"{}\", \"events_per_sec\": {:.0}, \
                 \"matched_points\": {}",
                b.date, b.total_events_per_sec, m.matched
            );
            if let Some(speedup) = m.speedup() {
                let _ = write!(
                    o,
                    ", \"matched_events_per_sec\": {:.0}, \
                     \"matched_baseline_events_per_sec\": {:.0}, \
                     \"matched_baseline_exact\": {}, \"speedup\": {speedup:.2}",
                    m.run_events_per_sec, m.baseline_events_per_sec, m.baseline_exact
                );
            }
            o.push_str("}\n");
        }
        o.push_str("}\n");
        o
    }
}

/// The aggregate comparison over the intersection of two runs' points.
#[derive(Debug, Clone, Copy)]
pub struct MatchedSpeedup {
    /// Points present in both runs.
    pub matched: usize,
    /// This run's aggregate events/second over the matched points.
    pub run_events_per_sec: f64,
    /// The baseline's aggregate events/second over the matched points
    /// (its whole-subset aggregate when raw counters were unavailable —
    /// see `baseline_exact`).
    pub baseline_events_per_sec: f64,
    /// Whether the baseline side was recomputed over exactly the
    /// matched points (true for any artifact this tool emitted).
    pub baseline_exact: bool,
}

impl MatchedSpeedup {
    /// The aggregate speedup, or `None` when nothing matched (or either
    /// side is degenerate) — callers must not report a number then.
    pub fn speedup(&self) -> Option<f64> {
        (self.matched > 0 && self.run_events_per_sec > 0.0 && self.baseline_events_per_sec > 0.0)
            .then(|| self.run_events_per_sec / self.baseline_events_per_sec)
    }
}

/// One point of a previously-emitted baseline.
#[derive(Debug, Clone)]
pub struct BaselinePoint {
    /// Point name (`<scenario>/n<ports>`).
    pub name: String,
    /// Events/second the baseline recorded for it.
    pub events_per_sec: f64,
    /// Raw event count, when the artifact carried it.
    pub events: Option<u64>,
    /// Raw wall-clock nanoseconds, when the artifact carried it.
    pub wall_ns: Option<u128>,
}

/// A previously-emitted baseline, parsed back for comparison.
#[derive(Debug, Clone)]
pub struct Baseline {
    /// Date of the baseline run.
    pub date: String,
    /// Instrumentation profile the baseline ran under, when the artifact
    /// recorded one (older hand-edited baselines may lack the line).
    pub profile: Option<String>,
    /// Fidelity tier the baseline ran at, when the artifact recorded
    /// one (artifacts predating the fidelity axis lack the line and
    /// were all exact by construction).
    pub fidelity: Option<String>,
    /// Aggregate events/second of the baseline.
    pub total_events_per_sec: f64,
    /// Per-point measurements, in artifact order.
    pub per_point: Vec<BaselinePoint>,
}

impl Baseline {
    /// The baseline's measurement of a named point, if present.
    pub fn point(&self, name: &str) -> Option<&BaselinePoint> {
        self.per_point.iter().find(|p| p.name == name)
    }

    /// Baseline events/second for a named point, if present.
    pub fn point_events_per_sec(&self, name: &str) -> Option<f64> {
        self.point(name).map(|p| p.events_per_sec)
    }

    /// Loads and parses a baseline artifact, with errors a CLI can print
    /// verbatim: a missing, truncated, unparsable or degenerate file is
    /// reported as one line naming the path, never a panic mid-parse.
    pub fn load(path: &str) -> Result<Baseline, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read baseline {path}: {e}"))?;
        let base = Baseline::parse(&text).ok_or_else(|| {
            format!("{path} is not a BENCH_*.json artifact (truncated or not bench JSON?)")
        })?;
        if !(base.total_events_per_sec.is_finite() && base.total_events_per_sec > 0.0) {
            return Err(format!(
                "{path}: baseline aggregate events_per_sec is {} — refusing to divide by it",
                base.total_events_per_sec
            ));
        }
        Ok(base)
    }

    /// Parses a `BENCH_*.json` previously written by [`BenchRun::to_json`].
    /// This is a minimal scanner for our own line-oriented format, not a
    /// general JSON parser (the workspace builds without serde).
    pub fn parse(text: &str) -> Option<Baseline> {
        fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
            let pat = format!("\"{key}\": ");
            let start = line.find(&pat)? + pat.len();
            let rest = &line[start..];
            let end = rest.find([',', '}']).unwrap_or(rest.len());
            Some(rest[..end].trim().trim_matches('"'))
        }
        let mut date = None;
        let mut profile = None;
        let mut fidelity = None;
        let mut total = None;
        let mut per_point = Vec::new();
        for line in text.lines() {
            let t = line.trim();
            if t.starts_with("\"date\"") && date.is_none() {
                date = field(t, "date").map(str::to_string);
            } else if t.starts_with("\"profile\"") && profile.is_none() {
                profile = field(t, "profile").map(str::to_string);
            } else if t.starts_with("\"fidelity\"") && fidelity.is_none() {
                fidelity = field(t, "fidelity").map(str::to_string);
            } else if t.starts_with("{\"name\"") {
                let name = field(t, "name")?.to_string();
                let eps: f64 = field(t, "events_per_sec")?.parse().ok()?;
                per_point.push(BaselinePoint {
                    name,
                    events_per_sec: eps,
                    events: field(t, "events").and_then(|v| v.parse().ok()),
                    wall_ns: field(t, "wall_ns").and_then(|v| v.parse().ok()),
                });
            } else if t.starts_with("\"total\"") {
                total = field(t, "events_per_sec")?.parse::<f64>().ok();
            }
        }
        Some(Baseline {
            date: date?,
            profile,
            fidelity,
            total_events_per_sec: total?,
            per_point,
        })
    }

    /// A one-line warning when the baseline's instrumentation profile
    /// differs from the one the current run will use — the numbers stay
    /// comparable on events/bytes (profile-invariant by contract) but
    /// wall-clock carries the observation-cost delta, so the trajectory
    /// diff should say so. `None` when the profiles agree or the
    /// baseline artifact predates the `profile` field.
    pub fn profile_mismatch_warning(&self, current: &str) -> Option<String> {
        let base = self.profile.as_deref()?;
        (base != current).then(|| {
            format!(
                "warning: baseline {} was measured under profile \"{base}\" but this run \
                 uses \"{current}\" — wall-clock deltas include the instrumentation-cost \
                 difference",
                self.date
            )
        })
    }

    /// A one-line warning when the baseline's fidelity tier differs
    /// from the one the current run will use. Unlike the profile case
    /// this mismatch is *not* events/bytes-comparable — an estimate-tier
    /// run doesn't process the exact event stream at all, so a cross-tier
    /// speedup would measure the wrong thing entirely. Artifacts that
    /// predate the `fidelity` field were all exact by construction, so
    /// a missing line is treated as `"exact"`, not as unknowable.
    pub fn fidelity_mismatch_warning(&self, current: &str) -> Option<String> {
        let base = self.fidelity.as_deref().unwrap_or("exact");
        (base != current).then(|| {
            format!(
                "warning: baseline {} was measured at fidelity \"{base}\" but this run \
                 uses \"{current}\" — the tiers simulate different things, so speedups \
                 against this baseline are not a perf trajectory",
                self.date
            )
        })
    }
}

/// The pinned catalogue subset. `smoke` shrinks every horizon ~20× for
/// the CI liveness check.
pub fn catalogue(smoke: bool) -> Vec<ScenarioSpec> {
    let ms =
        |full: u64, smoke_ms: u64| SimDuration::from_millis(if smoke { smoke_ms } else { full });
    let mut specs = vec![
        library::scenario("uniform")
            .expect("catalogue entry")
            .with_ports(16)
            .with_seed(11)
            .with_duration(ms(20, 1)),
        library::scenario("websearch")
            .expect("catalogue entry")
            .with_ports(16)
            .with_seed(12)
            .with_duration(ms(20, 1)),
        // 100 ms horizon: at 20 ms this point finished in ~4 ms of
        // wall-clock, entirely inside the host's noise floor, making it
        // the jumpiest line of every trajectory diff. Lengthening only
        // this point is safe: the aggregate speedup is computed over
        // matched points via events/sec, which is horizon-normalized.
        library::scenario("churn")
            .expect("catalogue entry")
            .with_ports(16)
            .with_seed(13)
            .with_duration(ms(100, 1)),
        // Slow-path point: host VOQs + control-channel grants.
        ScenarioSpec::new("hotspot-sw")
            .with_ports(16)
            .with_pattern(TrafficPattern::Hotspot {
                pairs: 4,
                fraction: 0.6,
                offset: 0,
            })
            .with_placement(PlacementKind::Software {
                model: SwModelKind::TunedUserspace,
                sync: SyncSpec::Ptp,
            })
            .with_reconfig(SimDuration::from_micros(100))
            .with_epoch(SimDuration::from_millis(1))
            .with_seed(14)
            .with_duration(ms(40, 2)),
        library::scenario("scale-stress")
            .expect("catalogue entry")
            .with_seed(15)
            .with_duration(ms(20, 1)),
        library::scenario("scale-stress")
            .expect("catalogue entry")
            .with_ports(256)
            .with_seed(16)
            .with_duration(ms(10, 1)),
        // Non-mirror estimators: the epoch loop's ground-truth snapshot
        // and L1 pass are on the perf trajectory only through these
        // points (every other fast-mode point mirrors occupancy).
        library::scenario("uniform")
            .expect("catalogue entry")
            .with_name("uniform-ewma")
            .with_estimator(EstimatorKind::Ewma { alpha: 0.3 })
            .with_ports(16)
            .with_seed(17)
            .with_duration(ms(20, 1)),
        library::scenario("uniform")
            .expect("catalogue entry")
            .with_name("uniform-countmin")
            .with_estimator(EstimatorKind::CountMin {
                depth: 4,
                width: 64,
                decay: SimDuration::from_micros(500),
            })
            .with_ports(16)
            .with_seed(18)
            .with_duration(ms(20, 1)),
        // Half-kilofabric scale point.
        library::scenario("scale-stress")
            .expect("catalogue entry")
            .with_ports(512)
            .with_seed(19)
            .with_duration(ms(4, 1)),
        // The kilofabric point: 1024 ports, where Solstice's epoch path
        // (worklist probing + matching) dominates wall-clock well before
        // the packet path — the per-phase timing fields exist to keep
        // that split measurable. 2 ms is the sustainable horizon chosen
        // in PR 4 (~200 epochs; seconds of wall-clock, not minutes).
        library::scenario("scale-stress")
            .expect("catalogue entry")
            .with_ports(1024)
            .with_seed(20)
            .with_shards(1024)
            .with_duration(if smoke {
                SimDuration::from_micros(250)
            } else {
                SimDuration::from_millis(2)
            }),
        // The two-kilofabric rung: only reachable on the sharded core —
        // a dense single-fabric VOQ bank at 2048 ports would be ~4M pair
        // states, where four row-windowed shard banks split that state
        // and keep per-window working sets cache-sized.
        library::scenario("scale-stress")
            .expect("catalogue entry")
            .with_ports(2048)
            .with_seed(21)
            .with_shards(2048)
            .with_duration(if smoke {
                SimDuration::from_micros(100)
            } else {
                SimDuration::from_millis(1)
            }),
        // Every fault family at once (link flaps, OCS misfires, scheduler
        // stalls) over the websearch mix: keeps the failover/degradation
        // machinery on the perf trajectory and pins its determinism.
        library::scenario("fault-storm")
            .expect("catalogue entry")
            .with_ports(16)
            .with_seed(22)
            .with_duration(ms(20, 1)),
    ];
    for s in &mut specs {
        let named = format!("{}/n{}", s.name, s.n_ports);
        *s = s.clone().with_name(named);
    }
    specs
}

/// Runs every point sequentially, timing each; `progress` is called with
/// a one-line summary after each point. With `repeats > 1` every point
/// runs that many times and records its **fastest** wall-clock (and that
/// run's phase split) — the documented fastest-of-N method against host
/// noise. Repeats must agree on events and delivered bytes (the runs are
/// seeded identically); a mismatch is a determinism bug and errors out.
///
/// `profile` selects the instrumentation bundle every point runs under
/// (the CLI defaults to [`InstrProfile::Lean`]: simulated behavior —
/// events, delivered bytes — is identical across profiles, so lean
/// artifacts stay comparable to historical full-fidelity baselines while
/// excluding observation cost from the measurement).
///
/// `point_timeout` is a wall-clock watchdog per point (repeat): a point
/// that overruns it aborts the whole bench with an error naming the
/// point, instead of hanging a CI lane forever. Points run through the
/// sweep engine's guarded runner ([`xds_scenario::run_point_guarded`]),
/// so a panicking point also surfaces as a named error, not a crash.
///
/// `fidelity` selects the tier every point runs at ([`Fidelity::Exact`]
/// is the default and the only tier whose artifacts belong on the perf
/// trajectory; an estimate-tier bench measures the estimator itself,
/// and the artifact records the tier so [`Baseline`] comparisons can
/// warn on a cross-tier diff).
#[allow(clippy::too_many_arguments)]
pub fn run_bench(
    specs: Vec<ScenarioSpec>,
    mode: &str,
    date: String,
    repeats: u32,
    profile: InstrProfile,
    fidelity: Fidelity,
    point_timeout: Option<std::time::Duration>,
    mut progress: impl FnMut(&BenchPoint),
) -> Result<BenchRun, String> {
    let repeats = repeats.max(1);
    let mut points = Vec::with_capacity(specs.len());
    for spec in specs {
        let spec = spec.with_profile(profile).with_fidelity(fidelity);
        let mut best: Option<BenchPoint> = None;
        for _ in 0..repeats {
            let t0 = Instant::now();
            let report = xds_scenario::run_point_guarded(&spec, point_timeout)
                .map_err(|e| format!("bench point {}: {e}", spec.name))?;
            let wall_ns = t0.elapsed().as_nanos();
            let p = BenchPoint {
                name: spec.name.clone(),
                scheduler: spec.scheduler.tag(),
                n_ports: spec.n_ports,
                duration: spec.duration,
                seed: spec.seed,
                events: report.events,
                wall_ns,
                delivered_bytes: report.delivered_bytes(),
                phase_estimate_ns: report.phases.estimate,
                phase_decompose_ns: report.phases.decompose,
                phase_apply_ns: report.phases.apply,
            };
            match &best {
                Some(b) => {
                    if b.events != p.events || b.delivered_bytes != p.delivered_bytes {
                        return Err(format!(
                            "bench point {}: repeats disagree (events {} vs {}, bytes {} vs {}) \
                             — the simulation is not deterministic",
                            p.name, b.events, p.events, b.delivered_bytes, p.delivered_bytes
                        ));
                    }
                    if p.wall_ns < b.wall_ns {
                        best = Some(p);
                    }
                }
                None => best = Some(p),
            }
        }
        let p = best.expect("repeats >= 1");
        progress(&p);
        points.push(p);
    }
    Ok(BenchRun {
        date,
        mode: mode.to_string(),
        repeats,
        profile: profile.label().to_string(),
        fidelity: fidelity.label().to_string(),
        points,
    })
}

/// Today's date as `YYYY-MM-DD` (UTC), from the system clock — no
/// external time crates, so the civil-date arithmetic is inlined
/// (Howard Hinnant's `civil_from_days`).
pub fn today_string() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let days = (secs / 86_400) as i64;
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_points_are_pinned_and_distinct() {
        let full = catalogue(false);
        assert!(full.len() >= 5, "subset must span the hot paths");
        let names: Vec<&str> = full.iter().map(|s| s.name.as_str()).collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "point names collide: {names:?}");
        // Seeds are pinned and distinct so the subset is reproducible.
        let mut seeds: Vec<u64> = full.iter().map(|s| s.seed).collect();
        seeds.sort();
        seeds.dedup();
        assert_eq!(seeds.len(), full.len());
        // The scale points are present at all five fabric sizes.
        assert!(names.contains(&"scale-stress/n128"));
        assert!(names.contains(&"scale-stress/n256"));
        assert!(names.contains(&"scale-stress/n512"));
        assert!(names.contains(&"scale-stress/n1024"));
        assert!(names.contains(&"scale-stress/n2048"));
        // The two largest rungs run on the sharded core.
        for s in &full {
            if s.n_ports >= 1024 {
                assert!(s.shards > 1, "{} must run sharded", s.name);
            }
        }
        // The non-mirror estimator points keep the ground-truth snapshot
        // + L1 epoch path on the trajectory.
        assert!(names.contains(&"uniform-ewma/n16"));
        assert!(names.contains(&"uniform-countmin/n16"));
        // The fault-storm point keeps the failover machinery on the
        // trajectory, with an actually-armed plan.
        assert!(names.contains(&"fault-storm/n16"));
        let storm = full.iter().find(|s| s.name == "fault-storm/n16").unwrap();
        assert!(
            storm.faults.as_ref().is_some_and(|p| p.is_active()),
            "fault-storm must arm a fault plan"
        );
        let full = catalogue(false);
        for s in &full {
            let mirror = s.estimator == xds_scenario::EstimatorKind::Mirror;
            if s.name.contains("ewma") || s.name.contains("countmin") {
                assert!(!mirror, "{} must exercise a non-mirror estimator", s.name);
            }
        }
    }

    #[test]
    fn smoke_catalogue_is_strictly_shorter() {
        let full = catalogue(false);
        let smoke = catalogue(true);
        assert_eq!(full.len(), smoke.len());
        for (f, s) in full.iter().zip(&smoke) {
            assert!(s.duration < f.duration, "{} not shrunk", f.name);
            assert_eq!(f.seed, s.seed, "smoke must keep the pinned seed");
        }
    }

    #[test]
    fn bench_json_roundtrips_through_baseline_parser() {
        let run = BenchRun {
            date: "2026-07-30".into(),
            mode: "full".into(),
            repeats: 1,
            profile: "full".into(),
            fidelity: "exact".into(),
            points: vec![
                BenchPoint {
                    name: "uniform/n16".into(),
                    scheduler: "islip_i3".into(),
                    n_ports: 16,
                    duration: SimDuration::from_millis(20),
                    seed: 11,
                    events: 1_000_000,
                    wall_ns: 500_000_000,
                    delivered_bytes: 42,
                    phase_estimate_ns: 0,
                    phase_decompose_ns: 0,
                    phase_apply_ns: 0,
                },
                BenchPoint {
                    name: "scale-stress/n128".into(),
                    scheduler: "solstice_p4".into(),
                    n_ports: 128,
                    duration: SimDuration::from_millis(20),
                    seed: 15,
                    events: 6_000_000,
                    wall_ns: 2_000_000_000,
                    delivered_bytes: 7,
                    phase_estimate_ns: 0,
                    phase_decompose_ns: 0,
                    phase_apply_ns: 0,
                },
            ],
        };
        let json = run.to_json(None);
        let base = Baseline::parse(&json).expect("self-emitted JSON parses");
        assert_eq!(base.date, "2026-07-30");
        assert_eq!(base.profile.as_deref(), Some("full"));
        assert_eq!(base.fidelity.as_deref(), Some("exact"));
        assert_eq!(base.per_point.len(), 2);
        assert_eq!(base.point_events_per_sec("uniform/n16"), Some(2_000_000.0));
        assert!((base.total_events_per_sec - run.events_per_sec()).abs() < 1.0);
        // Comparison run embeds speedups against the parsed baseline.
        let cmp = run.to_json(Some(&base));
        assert!(cmp.contains("\"speedup\": 1.00"), "{cmp}");
        assert!(cmp.contains("\"baseline\""));
    }

    #[test]
    fn profile_mismatch_warns_once_and_agreement_stays_silent() {
        let run = BenchRun {
            date: "2026-07-30".into(),
            mode: "full".into(),
            repeats: 1,
            profile: "full".into(),
            fidelity: "exact".into(),
            points: vec![BenchPoint {
                name: "uniform/n16".into(),
                scheduler: "islip_i3".into(),
                n_ports: 16,
                duration: SimDuration::from_millis(20),
                seed: 11,
                events: 1_000,
                wall_ns: 1_000_000,
                delivered_bytes: 1,
                phase_estimate_ns: 0,
                phase_decompose_ns: 0,
                phase_apply_ns: 0,
            }],
        };
        let base = Baseline::parse(&run.to_json(None)).unwrap();
        assert!(base.profile_mismatch_warning("full").is_none());
        let warn = base.profile_mismatch_warning("lean").expect("must warn");
        assert!(warn.contains("\"full\""), "{warn}");
        assert!(warn.contains("\"lean\""), "{warn}");
        assert!(warn.contains("2026-07-30"), "{warn}");
        // Artifacts that predate the profile field stay silent: there is
        // nothing trustworthy to compare against.
        let stripped = run.to_json(None).replace("  \"profile\": \"full\",\n", "");
        let old = Baseline::parse(&stripped).unwrap();
        assert_eq!(old.profile, None);
        assert!(old.profile_mismatch_warning("lean").is_none());
    }

    #[test]
    fn fidelity_mismatch_warns_and_old_artifacts_count_as_exact() {
        let run = BenchRun {
            date: "2026-08-08".into(),
            mode: "full".into(),
            repeats: 1,
            profile: "lean".into(),
            fidelity: "exact".into(),
            points: Vec::new(),
        };
        let base = Baseline::parse(&run.to_json(None)).unwrap();
        assert!(base.fidelity_mismatch_warning("exact").is_none());
        let warn = base
            .fidelity_mismatch_warning("estimate")
            .expect("must warn");
        assert!(warn.contains("\"exact\""), "{warn}");
        assert!(warn.contains("\"estimate\""), "{warn}");
        assert!(warn.contains("2026-08-08"), "{warn}");
        // Pre-fidelity artifacts were all exact by construction: an
        // estimate-tier run against one must still warn, and an exact
        // run must stay silent.
        let stripped = run
            .to_json(None)
            .replace("  \"fidelity\": \"exact\",\n", "");
        let old = Baseline::parse(&stripped).unwrap();
        assert_eq!(old.fidelity, None);
        assert!(old.fidelity_mismatch_warning("exact").is_none());
        assert!(old.fidelity_mismatch_warning("estimate").is_some());
    }

    #[test]
    fn missing_baseline_is_a_clear_error_not_a_panic() {
        let err = Baseline::load("/no/such/dir/BENCH_x.json").unwrap_err();
        assert!(
            err.contains("/no/such/dir/BENCH_x.json"),
            "error must name the path: {err}"
        );
    }

    #[test]
    fn truncated_and_garbage_baselines_are_clear_errors() {
        let dir = std::env::temp_dir();
        // Not JSON at all.
        let garbage = dir.join("xds_bench_garbage.json");
        std::fs::write(&garbage, "not json at all\n{{{").unwrap();
        let err = Baseline::load(garbage.to_str().unwrap()).unwrap_err();
        assert!(err.contains("not a BENCH_*.json artifact"), "{err}");
        // A real artifact cut off before the totals: parseable lines but
        // no aggregate — must error, not divide by garbage.
        let run = BenchRun {
            date: "2026-07-30".into(),
            mode: "full".into(),
            repeats: 1,
            profile: "full".into(),
            fidelity: "exact".into(),
            points: vec![BenchPoint {
                name: "uniform/n16".into(),
                scheduler: "islip_i3".into(),
                n_ports: 16,
                duration: SimDuration::from_millis(20),
                seed: 11,
                events: 1_000,
                wall_ns: 1_000_000,
                delivered_bytes: 1,
                phase_estimate_ns: 0,
                phase_decompose_ns: 0,
                phase_apply_ns: 0,
            }],
        };
        let full = run.to_json(None);
        let cut = &full[..full.find("\"total\"").unwrap()];
        let truncated = dir.join("xds_bench_truncated.json");
        std::fs::write(&truncated, cut).unwrap();
        let err = Baseline::load(truncated.to_str().unwrap()).unwrap_err();
        assert!(err.contains("xds_bench_truncated.json"), "{err}");
        // Zero aggregate: refuse the division.
        let zeroed = full.replace(
            "\"total\": {\"events\": 1000, \"wall_ns\": 1000000, \"events_per_sec\": 1000000}",
            "\"total\": {\"events\": 0, \"wall_ns\": 0, \"events_per_sec\": 0}",
        );
        assert_ne!(zeroed, full, "replacement must have matched");
        let zero_path = dir.join("xds_bench_zero.json");
        std::fs::write(&zero_path, zeroed).unwrap();
        let err = Baseline::load(zero_path.to_str().unwrap()).unwrap_err();
        assert!(err.contains("refusing to divide"), "{err}");
    }

    #[test]
    fn matched_aggregate_ignores_points_the_baseline_lacks() {
        let mk = |name: &str, events: u64, wall_ns: u128| BenchPoint {
            name: name.into(),
            scheduler: "islip_i3".into(),
            n_ports: 16,
            duration: SimDuration::from_millis(20),
            seed: 1,
            events,
            wall_ns,
            delivered_bytes: 0,
            phase_estimate_ns: 0,
            phase_decompose_ns: 0,
            phase_apply_ns: 0,
        };
        let old = BenchRun {
            date: "2026-07-30".into(),
            mode: "full".into(),
            repeats: 1,
            profile: "full".into(),
            fidelity: "exact".into(),
            points: vec![mk("a", 1_000_000, 1_000_000_000)],
        };
        let base = Baseline::parse(&old.to_json(None)).unwrap();
        // New run: same point twice as fast, plus a new very fast point
        // that would inflate a naive whole-run aggregate.
        let new = BenchRun {
            date: "2026-07-31".into(),
            mode: "full".into(),
            repeats: 1,
            profile: "full".into(),
            fidelity: "exact".into(),
            points: vec![
                mk("a", 1_000_000, 500_000_000),
                mk("b-new", 50_000_000, 1_000_000_000),
            ],
        };
        let m = new.matched_speedup(&base);
        assert_eq!(m.matched, 1);
        assert!(m.baseline_exact, "emitted artifacts carry raw counters");
        let speedup = m.speedup().unwrap();
        assert!((speedup - 2.0).abs() < 0.01, "matched speedup {speedup}");
        let json = new.to_json(Some(&base));
        assert!(json.contains("\"matched_points\": 1"), "{json}");
        assert!(json.contains("\"speedup\": 2.00"), "{json}");
        // The baseline side of the ratio is recomputed over the matched
        // points too: dropping a point from the run must not let the
        // baseline's whole-subset aggregate skew the number.
        let old2 = BenchRun {
            date: "2026-07-30".into(),
            mode: "full".into(),
            repeats: 1,
            profile: "full".into(),
            fidelity: "exact".into(),
            points: vec![
                mk("a", 1_000_000, 1_000_000_000),
                mk("slow", 1_000_000, 9_000_000_000),
            ],
        };
        let base2 = Baseline::parse(&old2.to_json(None)).unwrap();
        let new2 = BenchRun {
            date: "2026-07-31".into(),
            mode: "full".into(),
            repeats: 1,
            profile: "full".into(),
            fidelity: "exact".into(),
            points: vec![mk("a", 1_000_000, 1_000_000_000)],
        };
        let m2 = new2.matched_speedup(&base2);
        assert_eq!(m2.matched, 1);
        let s2 = m2.speedup().unwrap();
        assert!(
            (s2 - 1.0).abs() < 0.01,
            "same speed on the matched point must read 1.0, got {s2}"
        );
        // Nothing in common: no number at all, not a bogus 0.00.
        let stranger = BenchRun {
            date: "2026-08-01".into(),
            mode: "full".into(),
            repeats: 1,
            profile: "full".into(),
            fidelity: "exact".into(),
            points: vec![mk("z", 1, 1_000)],
        };
        assert!(stranger.matched_speedup(&base2).speedup().is_none());
        let json = stranger.to_json(Some(&base2));
        assert!(json.contains("\"matched_points\": 0"), "{json}");
        assert!(!json.contains("\"speedup\""), "{json}");
    }

    #[test]
    fn smoke_bench_runs_end_to_end() {
        // Shrink further so the unit test stays fast: just the two
        // 16-port fast-mode points at 1 ms.
        let specs: Vec<ScenarioSpec> = catalogue(true)
            .into_iter()
            .filter(|s| s.n_ports == 16)
            .take(2)
            .collect();
        let run = run_bench(
            specs,
            "smoke",
            "2026-01-01".into(),
            1,
            InstrProfile::Lean,
            Fidelity::Exact,
            None,
            |_| {},
        )
        .unwrap();
        assert_eq!(run.points.len(), 2);
        assert!(run.total_events() > 0);
        assert!(run.events_per_sec() > 0.0);
    }

    #[test]
    fn today_string_is_iso_shaped() {
        let d = today_string();
        assert_eq!(d.len(), 10, "{d}");
        assert_eq!(&d[4..5], "-");
        assert_eq!(&d[7..8], "-");
        assert!(d[..4].parse::<u32>().unwrap() >= 2024);
    }
}
