//! The reproducible perf baseline: `sweep bench`.
//!
//! Simulation cost is a first-class metric of this project — "as fast as
//! the hardware allows" is unfalsifiable without a trajectory — so this
//! module pins a catalogue subset (fixed scenarios, fixed seeds, fixed
//! durations) and measures **wall-clock and events/second per point**,
//! emitting a `BENCH_<date>.json` artifact every future PR can diff
//! against. Points run sequentially on one thread: the quantity under
//! test is the cost of one simulation, not sweep parallelism.
//!
//! The pinned subset spans the runtime's distinct hot paths:
//!
//! * `uniform` / `websearch` — fast-mode packet pump + EPS/OCS split;
//! * `churn` — demand estimation under matrix rotation;
//! * `hotspot-sw` — slow-mode host VOQs, control-channel grants;
//! * `scale-stress` at 128 and 256 ports — multi-entry schedule
//!   execution at fabric scale, where per-event copying dominates.
//!
//! `--smoke` shrinks every horizon ~20× so CI can prove the harness
//! itself still runs (seconds, not minutes) without producing numbers
//! anyone should compare.

use std::time::Instant;

use xds_scenario::{library, PlacementKind, ScenarioSpec, SwModelKind, SyncSpec, TrafficPattern};
use xds_sim::SimDuration;

/// One measured point of the baseline.
#[derive(Debug, Clone)]
pub struct BenchPoint {
    /// Point name (`<scenario>/n<ports>`).
    pub name: String,
    /// Scheduler tag (parameterized).
    pub scheduler: String,
    /// Fabric port count.
    pub n_ports: usize,
    /// Simulated horizon.
    pub duration: SimDuration,
    /// Pinned seed.
    pub seed: u64,
    /// Events the simulation processed.
    pub events: u64,
    /// Wall-clock nanoseconds the point took.
    pub wall_ns: u128,
    /// Total delivered bytes (sanity anchor: must not drift run-to-run).
    pub delivered_bytes: u64,
}

impl BenchPoint {
    /// Simulation throughput in events per wall-clock second.
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        self.events as f64 * 1e9 / self.wall_ns as f64
    }
}

/// A completed baseline run.
#[derive(Debug, Clone)]
pub struct BenchRun {
    /// ISO date the run was taken (`YYYY-MM-DD`).
    pub date: String,
    /// `"full"` or `"smoke"`.
    pub mode: String,
    /// Per-point measurements, in catalogue order.
    pub points: Vec<BenchPoint>,
}

impl BenchRun {
    /// Total events across all points.
    pub fn total_events(&self) -> u64 {
        self.points.iter().map(|p| p.events).sum()
    }

    /// Total wall-clock nanoseconds across all points.
    pub fn total_wall_ns(&self) -> u128 {
        self.points.iter().map(|p| p.wall_ns).sum()
    }

    /// Aggregate events/second over the whole subset.
    pub fn events_per_sec(&self) -> f64 {
        let w = self.total_wall_ns();
        if w == 0 {
            return 0.0;
        }
        self.total_events() as f64 * 1e9 / w as f64
    }

    /// Serializes the run (and, when given, the baseline it is being
    /// compared against) as the `BENCH_<date>.json` artifact.
    pub fn to_json(&self, baseline: Option<&Baseline>) -> String {
        use std::fmt::Write as _;
        let mut o = String::from("{\n");
        let _ = writeln!(o, "  \"schema\": \"xds-bench-v1\",");
        let _ = writeln!(o, "  \"date\": \"{}\",", self.date);
        let _ = writeln!(o, "  \"mode\": \"{}\",", self.mode);
        o.push_str("  \"points\": [\n");
        for (i, p) in self.points.iter().enumerate() {
            let _ = write!(
                o,
                "    {{\"name\": \"{}\", \"scheduler\": \"{}\", \"n_ports\": {}, \
                 \"duration_ns\": {}, \"seed\": {}, \"events\": {}, \"wall_ns\": {}, \
                 \"events_per_sec\": {:.0}, \"delivered_bytes\": {}",
                p.name,
                p.scheduler,
                p.n_ports,
                p.duration.as_nanos(),
                p.seed,
                p.events,
                p.wall_ns,
                p.events_per_sec(),
                p.delivered_bytes
            );
            if let Some(b) = baseline {
                if let Some(base_eps) = b.point_events_per_sec(&p.name) {
                    let _ = write!(
                        o,
                        ", \"baseline_events_per_sec\": {base_eps:.0}, \"speedup\": {:.2}",
                        p.events_per_sec() / base_eps
                    );
                }
            }
            o.push('}');
            if i + 1 < self.points.len() {
                o.push(',');
            }
            o.push('\n');
        }
        o.push_str("  ],\n");
        let _ = writeln!(
            o,
            "  \"total\": {{\"events\": {}, \"wall_ns\": {}, \"events_per_sec\": {:.0}}}{}",
            self.total_events(),
            self.total_wall_ns(),
            self.events_per_sec(),
            if baseline.is_some() { "," } else { "" }
        );
        if let Some(b) = baseline {
            let _ = writeln!(
                o,
                "  \"baseline\": {{\"date\": \"{}\", \"events_per_sec\": {:.0}, \
                 \"speedup\": {:.2}}}",
                b.date,
                b.total_events_per_sec,
                self.events_per_sec() / b.total_events_per_sec
            );
        }
        o.push_str("}\n");
        o
    }
}

/// A previously-emitted baseline, parsed back for comparison.
#[derive(Debug, Clone)]
pub struct Baseline {
    /// Date of the baseline run.
    pub date: String,
    /// Aggregate events/second of the baseline.
    pub total_events_per_sec: f64,
    /// Per-point `(name, events_per_sec)` pairs.
    pub per_point: Vec<(String, f64)>,
}

impl Baseline {
    /// Baseline events/second for a named point, if present.
    pub fn point_events_per_sec(&self, name: &str) -> Option<f64> {
        self.per_point
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, e)| *e)
    }

    /// Parses a `BENCH_*.json` previously written by [`BenchRun::to_json`].
    /// This is a minimal scanner for our own line-oriented format, not a
    /// general JSON parser (the workspace builds without serde).
    pub fn parse(text: &str) -> Option<Baseline> {
        fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
            let pat = format!("\"{key}\": ");
            let start = line.find(&pat)? + pat.len();
            let rest = &line[start..];
            let end = rest.find([',', '}']).unwrap_or(rest.len());
            Some(rest[..end].trim().trim_matches('"'))
        }
        let mut date = None;
        let mut total = None;
        let mut per_point = Vec::new();
        for line in text.lines() {
            let t = line.trim();
            if t.starts_with("\"date\"") && date.is_none() {
                date = field(t, "date").map(str::to_string);
            } else if t.starts_with("{\"name\"") {
                let name = field(t, "name")?.to_string();
                let eps: f64 = field(t, "events_per_sec")?.parse().ok()?;
                per_point.push((name, eps));
            } else if t.starts_with("\"total\"") {
                total = field(t, "events_per_sec")?.parse::<f64>().ok();
            }
        }
        Some(Baseline {
            date: date?,
            total_events_per_sec: total?,
            per_point,
        })
    }
}

/// The pinned catalogue subset. `smoke` shrinks every horizon ~20× for
/// the CI liveness check.
pub fn catalogue(smoke: bool) -> Vec<ScenarioSpec> {
    let ms =
        |full: u64, smoke_ms: u64| SimDuration::from_millis(if smoke { smoke_ms } else { full });
    let mut specs = vec![
        library::scenario("uniform")
            .expect("catalogue entry")
            .with_ports(16)
            .with_seed(11)
            .with_duration(ms(20, 1)),
        library::scenario("websearch")
            .expect("catalogue entry")
            .with_ports(16)
            .with_seed(12)
            .with_duration(ms(20, 1)),
        library::scenario("churn")
            .expect("catalogue entry")
            .with_ports(16)
            .with_seed(13)
            .with_duration(ms(20, 1)),
        // Slow-path point: host VOQs + control-channel grants.
        ScenarioSpec::new("hotspot-sw")
            .with_ports(16)
            .with_pattern(TrafficPattern::Hotspot {
                pairs: 4,
                fraction: 0.6,
                offset: 0,
            })
            .with_placement(PlacementKind::Software {
                model: SwModelKind::TunedUserspace,
                sync: SyncSpec::Ptp,
            })
            .with_reconfig(SimDuration::from_micros(100))
            .with_epoch(SimDuration::from_millis(1))
            .with_seed(14)
            .with_duration(ms(40, 2)),
        library::scenario("scale-stress")
            .expect("catalogue entry")
            .with_seed(15)
            .with_duration(ms(20, 1)),
        library::scenario("scale-stress")
            .expect("catalogue entry")
            .with_ports(256)
            .with_seed(16)
            .with_duration(ms(10, 1)),
    ];
    for s in &mut specs {
        let named = format!("{}/n{}", s.name, s.n_ports);
        *s = s.clone().with_name(named);
    }
    specs
}

/// Runs every point sequentially, timing each; `progress` is called with
/// a one-line summary after each point.
pub fn run_bench(
    specs: Vec<ScenarioSpec>,
    mode: &str,
    date: String,
    mut progress: impl FnMut(&BenchPoint),
) -> Result<BenchRun, String> {
    let mut points = Vec::with_capacity(specs.len());
    for spec in specs {
        let t0 = Instant::now();
        let report = spec
            .run()
            .map_err(|e| format!("bench point {}: {e}", spec.name))?;
        let wall_ns = t0.elapsed().as_nanos();
        let p = BenchPoint {
            name: spec.name.clone(),
            scheduler: spec.scheduler.tag(),
            n_ports: spec.n_ports,
            duration: spec.duration,
            seed: spec.seed,
            events: report.events,
            wall_ns,
            delivered_bytes: report.delivered_bytes(),
        };
        progress(&p);
        points.push(p);
    }
    Ok(BenchRun {
        date,
        mode: mode.to_string(),
        points,
    })
}

/// Today's date as `YYYY-MM-DD` (UTC), from the system clock — no
/// external time crates, so the civil-date arithmetic is inlined
/// (Howard Hinnant's `civil_from_days`).
pub fn today_string() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let days = (secs / 86_400) as i64;
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_points_are_pinned_and_distinct() {
        let full = catalogue(false);
        assert!(full.len() >= 5, "subset must span the hot paths");
        let names: Vec<&str> = full.iter().map(|s| s.name.as_str()).collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "point names collide: {names:?}");
        // Seeds are pinned and distinct so the subset is reproducible.
        let mut seeds: Vec<u64> = full.iter().map(|s| s.seed).collect();
        seeds.sort();
        seeds.dedup();
        assert_eq!(seeds.len(), full.len());
        // The scale points are present at both fabric sizes.
        assert!(names.contains(&"scale-stress/n128"));
        assert!(names.contains(&"scale-stress/n256"));
    }

    #[test]
    fn smoke_catalogue_is_strictly_shorter() {
        let full = catalogue(false);
        let smoke = catalogue(true);
        assert_eq!(full.len(), smoke.len());
        for (f, s) in full.iter().zip(&smoke) {
            assert!(s.duration < f.duration, "{} not shrunk", f.name);
            assert_eq!(f.seed, s.seed, "smoke must keep the pinned seed");
        }
    }

    #[test]
    fn bench_json_roundtrips_through_baseline_parser() {
        let run = BenchRun {
            date: "2026-07-30".into(),
            mode: "full".into(),
            points: vec![
                BenchPoint {
                    name: "uniform/n16".into(),
                    scheduler: "islip_i3".into(),
                    n_ports: 16,
                    duration: SimDuration::from_millis(20),
                    seed: 11,
                    events: 1_000_000,
                    wall_ns: 500_000_000,
                    delivered_bytes: 42,
                },
                BenchPoint {
                    name: "scale-stress/n128".into(),
                    scheduler: "solstice_p4".into(),
                    n_ports: 128,
                    duration: SimDuration::from_millis(20),
                    seed: 15,
                    events: 6_000_000,
                    wall_ns: 2_000_000_000,
                    delivered_bytes: 7,
                },
            ],
        };
        let json = run.to_json(None);
        let base = Baseline::parse(&json).expect("self-emitted JSON parses");
        assert_eq!(base.date, "2026-07-30");
        assert_eq!(base.per_point.len(), 2);
        assert_eq!(base.point_events_per_sec("uniform/n16"), Some(2_000_000.0));
        assert!((base.total_events_per_sec - run.events_per_sec()).abs() < 1.0);
        // Comparison run embeds speedups against the parsed baseline.
        let cmp = run.to_json(Some(&base));
        assert!(cmp.contains("\"speedup\": 1.00"), "{cmp}");
        assert!(cmp.contains("\"baseline\""));
    }

    #[test]
    fn smoke_bench_runs_end_to_end() {
        // Shrink further so the unit test stays fast: just the two
        // 16-port fast-mode points at 1 ms.
        let specs: Vec<ScenarioSpec> = catalogue(true)
            .into_iter()
            .filter(|s| s.n_ports == 16)
            .take(2)
            .collect();
        let run = run_bench(specs, "smoke", "2026-01-01".into(), |_| {}).unwrap();
        assert_eq!(run.points.len(), 2);
        assert!(run.total_events() > 0);
        assert!(run.events_per_sec() > 0.0);
    }

    #[test]
    fn today_string_is_iso_shaped() {
        let d = today_string();
        assert_eq!(d.len(), 10, "{d}");
        assert_eq!(&d[4..5], "-");
        assert_eq!(&d[7..8], "-");
        assert!(d[..4].parse::<u32>().unwrap() >= 2024);
    }
}
