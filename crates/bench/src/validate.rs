//! The estimate-tier error envelope: `sweep validate-estimates`.
//!
//! The exact core's contract is its golden traces; the estimate tier's
//! contract is a **tested error envelope**. This module runs the pinned
//! bench catalogue (see [`crate::bench::catalogue`]) at both fidelity
//! tiers, compares the canonical metric columns point by point, and
//! emits `results/<out>.validation.{json,csv}`:
//!
//! * the JSON artifact (`xds-validate-v1`, line-oriented like the bench
//!   format) carries one row per scenario — wall-clock for both tiers,
//!   the speedup, and the p50/p95/max relative error across the
//!   validated metrics — plus per-metric error percentiles across the
//!   whole catalogue and an aggregate block (overall envelope, minimum
//!   speedup on the kilofabric rungs);
//! * the CSV carries the full detail: one row per `(scenario, metric)`
//!   with both values and the relative error, so regressions in a
//!   single estimator model are attributable from the artifact alone.
//!
//! Wall-clock timing here is harness-side measurement of the two tiers
//! (the same role `Instant` plays in [`crate::bench`]); it never feeds
//! back into either simulation, so the metric columns — and therefore
//! every error number — are deterministic for fixed seeds.

use std::time::Instant;

use xds_metrics::{percentile_of, relative_error};
use xds_scenario::{Fidelity, ScenarioSpec};

/// The metric columns the envelope is measured over: the headline
/// delivery/latency numbers a sweep consumer would actually plot.
/// Observation-gated columns that are absent on a point (e.g. no FCT
/// because no flow completed) are skipped for that point, never counted
/// as zero-error.
pub const VALIDATED_METRICS: [&str; 10] = [
    "delivered_ocs_bytes",
    "delivered_eps_bytes",
    "throughput_gbps",
    "goodput",
    "ocs_byte_share",
    "ocs_duty_cycle",
    "p50_bulk_ns",
    "p99_bulk_ns",
    "p99_inter_ns",
    "fct_p99_ns",
];

/// Port count from which a point counts as a "kilofabric rung" for the
/// minimum-speedup aggregate.
pub const KILOFABRIC_PORTS: usize = 1024;

/// One metric compared across the two tiers on one scenario.
#[derive(Debug, Clone)]
pub struct MetricError {
    /// Canonical metric column name.
    pub metric: &'static str,
    /// The exact tier's value.
    pub exact: f64,
    /// The estimate tier's value.
    pub estimate: f64,
    /// `|estimate - exact| / max(|exact|, |estimate|, 1)` (see
    /// [`xds_metrics::relative_error`]).
    pub rel_err: f64,
}

/// One catalogue scenario validated at both tiers.
#[derive(Debug, Clone)]
pub struct ValidationRow {
    /// Point name (`<scenario>/n<ports>`).
    pub name: String,
    /// Fabric port count.
    pub n_ports: usize,
    /// Wall-clock nanoseconds the exact tier took.
    pub exact_wall_ns: u128,
    /// Wall-clock nanoseconds the estimate tier took.
    pub est_wall_ns: u128,
    /// Per-metric comparisons (metrics absent on either tier skipped).
    pub errors: Vec<MetricError>,
}

impl ValidationRow {
    /// Exact-tier wall-clock over estimate-tier wall-clock.
    pub fn speedup(&self) -> f64 {
        if self.est_wall_ns == 0 {
            return 0.0;
        }
        self.exact_wall_ns as f64 / self.est_wall_ns as f64
    }

    /// The row's relative errors as a plain vector.
    pub fn err_values(&self) -> Vec<f64> {
        self.errors.iter().map(|e| e.rel_err).collect()
    }
}

/// A completed two-tier validation run.
#[derive(Debug, Clone)]
pub struct ValidationRun {
    /// ISO date the run was taken (`YYYY-MM-DD`).
    pub date: String,
    /// `"full"` or `"smoke"`.
    pub mode: String,
    /// Per-scenario rows, in catalogue order.
    pub rows: Vec<ValidationRow>,
}

impl ValidationRun {
    /// Every relative error in the run, across all rows and metrics.
    pub fn all_errors(&self) -> Vec<f64> {
        self.rows.iter().flat_map(|r| r.err_values()).collect()
    }

    /// All relative errors recorded for one metric, across scenarios.
    pub fn metric_errors(&self, metric: &str) -> Vec<f64> {
        self.rows
            .iter()
            .flat_map(|r| r.errors.iter())
            .filter(|e| e.metric == metric)
            .map(|e| e.rel_err)
            .collect()
    }

    /// The smallest exact/estimate speedup among the kilofabric rungs
    /// (`n_ports >= 1024`), or `None` when the run has none (smoke
    /// horizons still include them; a filtered custom run may not).
    pub fn min_kilofabric_speedup(&self) -> Option<f64> {
        self.rows
            .iter()
            .filter(|r| r.n_ports >= KILOFABRIC_PORTS)
            .map(ValidationRow::speedup)
            .min_by(|a, b| a.partial_cmp(b).expect("finite speedups"))
    }

    /// Serializes the run as the line-oriented
    /// `results/<out>.validation.json` artifact.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut o = String::from("{\n");
        let _ = writeln!(o, "  \"schema\": \"xds-validate-v1\",");
        let _ = writeln!(o, "  \"date\": \"{}\",", self.date);
        let _ = writeln!(o, "  \"mode\": \"{}\",", self.mode);
        o.push_str("  \"rows\": [\n");
        for (i, r) in self.rows.iter().enumerate() {
            let errs = r.err_values();
            let _ = write!(
                o,
                "    {{\"name\": \"{}\", \"n_ports\": {}, \"metrics\": {}, \
                 \"exact_wall_ns\": {}, \"est_wall_ns\": {}, \"speedup\": {:.2}, \
                 \"err_p50\": {:.6}, \"err_p95\": {:.6}, \"err_max\": {:.6}}}",
                r.name,
                r.n_ports,
                errs.len(),
                r.exact_wall_ns,
                r.est_wall_ns,
                r.speedup(),
                percentile_of(&errs, 0.50),
                percentile_of(&errs, 0.95),
                percentile_of(&errs, 1.0),
            );
            o.push_str(if i + 1 < self.rows.len() { ",\n" } else { "\n" });
        }
        o.push_str("  ],\n  \"metrics\": [\n");
        for (i, m) in VALIDATED_METRICS.iter().enumerate() {
            let errs = self.metric_errors(m);
            let _ = write!(
                o,
                "    {{\"metric\": \"{m}\", \"points\": {}, \"err_p50\": {:.6}, \
                 \"err_p95\": {:.6}, \"err_max\": {:.6}}}",
                errs.len(),
                percentile_of(&errs, 0.50),
                percentile_of(&errs, 0.95),
                percentile_of(&errs, 1.0),
            );
            o.push_str(if i + 1 < VALIDATED_METRICS.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        let all = self.all_errors();
        let _ = write!(
            o,
            "  ],\n  \"aggregate\": {{\"rows\": {}, \"comparisons\": {}, \
             \"err_p50\": {:.6}, \"err_p95\": {:.6}, \"err_max\": {:.6}",
            self.rows.len(),
            all.len(),
            percentile_of(&all, 0.50),
            percentile_of(&all, 0.95),
            percentile_of(&all, 1.0),
        );
        if let Some(s) = self.min_kilofabric_speedup() {
            let _ = write!(o, ", \"min_kilofabric_speedup\": {s:.2}");
        }
        o.push_str("}\n}\n");
        o
    }

    /// Serializes the full per-metric detail as the
    /// `results/<out>.validation.csv` artifact.
    pub fn to_csv(&self) -> String {
        use std::fmt::Write as _;
        let mut o = String::from(
            "scenario,n_ports,metric,exact,estimate,rel_err,exact_wall_ns,est_wall_ns,speedup\n",
        );
        for r in &self.rows {
            for e in &r.errors {
                let _ = writeln!(
                    o,
                    "{},{},{},{},{},{:.6},{},{},{:.2}",
                    r.name,
                    r.n_ports,
                    e.metric,
                    e.exact,
                    e.estimate,
                    e.rel_err,
                    r.exact_wall_ns,
                    r.est_wall_ns,
                    r.speedup(),
                );
            }
        }
        o
    }
}

/// Compares one spec's two tiers: runs it exactly and as an estimate
/// (timing both), then diffs the validated metric columns. Columns
/// absent on either side (observation-gated and unmeasured on that
/// point) are skipped rather than scored.
///
/// The estimate tier is timed as the better of two back-to-back runs:
/// its wall-clock is milliseconds where the exact tier's is hundreds,
/// so a single scheduling hiccup would otherwise dominate the recorded
/// speedup. The second run doubles as a point-level determinism check —
/// both runs must produce bit-identical metric columns.
pub fn validate_point(
    spec: &ScenarioSpec,
    point_timeout: Option<std::time::Duration>,
) -> Result<ValidationRow, String> {
    let exact_spec = spec.clone().with_fidelity(Fidelity::Exact);
    let est_spec = spec.clone().with_fidelity(Fidelity::Estimate);
    let t0 = Instant::now();
    let exact = xds_scenario::run_point_guarded(&exact_spec, point_timeout)
        .map_err(|e| format!("validate point {} (exact): {e}", spec.name))?;
    let exact_wall_ns = t0.elapsed().as_nanos();
    let t1 = Instant::now();
    let est = xds_scenario::run_point_guarded(&est_spec, point_timeout)
        .map_err(|e| format!("validate point {} (estimate): {e}", spec.name))?;
    let mut est_wall_ns = t1.elapsed().as_nanos();
    let t2 = Instant::now();
    let est_rerun = xds_scenario::run_point_guarded(&est_spec, point_timeout)
        .map_err(|e| format!("validate point {} (estimate rerun): {e}", spec.name))?;
    est_wall_ns = est_wall_ns.min(t2.elapsed().as_nanos());
    for metric in VALIDATED_METRICS {
        let a = est.metric(metric).and_then(|v| v.as_f64());
        let b = est_rerun.metric(metric).and_then(|v| v.as_f64());
        if a.map(f64::to_bits) != b.map(f64::to_bits) {
            return Err(format!(
                "validate point {}: estimate tier not deterministic on {metric} ({a:?} vs {b:?})",
                spec.name
            ));
        }
    }
    let mut errors = Vec::new();
    for metric in VALIDATED_METRICS {
        let (Some(x), Some(e)) = (
            exact.metric(metric).and_then(|v| v.as_f64()),
            est.metric(metric).and_then(|v| v.as_f64()),
        ) else {
            continue;
        };
        errors.push(MetricError {
            metric,
            exact: x,
            estimate: e,
            rel_err: relative_error(e, x),
        });
    }
    Ok(ValidationRow {
        name: spec.name.clone(),
        n_ports: spec.n_ports,
        exact_wall_ns,
        est_wall_ns,
        errors,
    })
}

/// Runs every spec at both tiers sequentially, in order; `progress` is
/// called with each completed row. Sequential single-thread execution
/// keeps the wall-clock comparison honest (the speedup under test is
/// one tier against the other, not sweep parallelism).
pub fn run_validation(
    specs: Vec<ScenarioSpec>,
    mode: &str,
    date: String,
    point_timeout: Option<std::time::Duration>,
    mut progress: impl FnMut(&ValidationRow),
) -> Result<ValidationRun, String> {
    let mut rows = Vec::with_capacity(specs.len());
    for spec in specs {
        let row = validate_point(&spec, point_timeout)?;
        progress(&row);
        rows.push(row);
    }
    Ok(ValidationRun {
        date,
        mode: mode.to_string(),
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use xds_sim::SimDuration;

    fn tiny_specs() -> Vec<ScenarioSpec> {
        ["uniform", "hotspot"]
            .iter()
            .map(|n| {
                xds_scenario::library::scenario(n)
                    .expect("known name")
                    .with_ports(8)
                    .with_seed(7)
                    .with_duration(SimDuration::from_millis(1))
            })
            .collect()
    }

    #[test]
    fn validation_rows_cover_metrics_and_serialize() {
        let run = run_validation(tiny_specs(), "smoke", "2026-01-01".into(), None, |_| {}).unwrap();
        assert_eq!(run.rows.len(), 2);
        for r in &run.rows {
            assert!(
                r.errors.len() >= 6,
                "{}: too few comparable metrics ({})",
                r.name,
                r.errors.len()
            );
            for e in &r.errors {
                assert!(e.rel_err.is_finite(), "{}/{} not finite", r.name, e.metric);
            }
        }
        let json = run.to_json();
        assert!(json.contains("\"schema\": \"xds-validate-v1\""));
        assert!(json.contains("\"err_p95\""));
        assert!(json.contains("\"aggregate\""));
        // No kilofabric rung in the tiny subset: the aggregate must not
        // invent a speedup for it.
        assert!(!json.contains("min_kilofabric_speedup"));
        let csv = run.to_csv();
        let header = csv.lines().next().unwrap();
        assert_eq!(
            header,
            "scenario,n_ports,metric,exact,estimate,rel_err,exact_wall_ns,est_wall_ns,speedup"
        );
        let width = header.split(',').count();
        assert!(csv.lines().count() > 2);
        for line in csv.lines().skip(1) {
            assert_eq!(line.split(',').count(), width, "ragged: {line}");
        }
    }

    #[test]
    fn error_numbers_are_deterministic_across_runs() {
        // Wall-clock differs run to run; the metric comparisons must not.
        let a = run_validation(tiny_specs(), "smoke", "2026-01-01".into(), None, |_| {}).unwrap();
        let b = run_validation(tiny_specs(), "smoke", "2026-01-01".into(), None, |_| {}).unwrap();
        for (ra, rb) in a.rows.iter().zip(&b.rows) {
            assert_eq!(ra.name, rb.name);
            assert_eq!(ra.errors.len(), rb.errors.len());
            for (ea, eb) in ra.errors.iter().zip(&rb.errors) {
                assert_eq!(ea.metric, eb.metric);
                assert_eq!(ea.exact.to_bits(), eb.exact.to_bits());
                assert_eq!(ea.estimate.to_bits(), eb.estimate.to_bits());
            }
        }
    }

    #[test]
    fn kilofabric_minimum_tracks_the_slowest_large_rung() {
        let row = |name: &str, n: usize, exact: u128, est: u128| ValidationRow {
            name: name.into(),
            n_ports: n,
            exact_wall_ns: exact,
            est_wall_ns: est,
            errors: Vec::new(),
        };
        let run = ValidationRun {
            date: "2026-01-01".into(),
            mode: "full".into(),
            rows: vec![
                row("small/n16", 16, 1_000, 10),       // 100x, but not kilofabric
                row("big/n1024", 1024, 40_000, 1_000), // 40x
                row("big/n2048", 2048, 30_000, 2_000), // 15x <- minimum
            ],
        };
        let min = run.min_kilofabric_speedup().unwrap();
        assert!((min - 15.0).abs() < 1e-9, "{min}");
        assert!(run.to_json().contains("\"min_kilofabric_speedup\": 15.00"));
    }
}
