//! Criterion micro-benchmarks of every scheduling algorithm — the
//! "schedule computation" term of the paper's latency budget, measured as
//! host software (the hardware cycle model lives in `exp_scalability`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use xds_core::demand::DemandMatrix;
use xds_core::sched::*;
use xds_sim::{BitRate, SimDuration, SimRng, SimTime};

fn hotspot_demand(n: usize) -> DemandMatrix {
    let mut rng = SimRng::new(7);
    let mut d = DemandMatrix::zero(n);
    for i in 0..n {
        d.set(i, (i + 1) % n, 1_000_000 + rng.below(1_000_000));
        for _ in 0..4 {
            let j = rng.below_usize(n);
            if j != i {
                d.add(i, j, rng.below(100_000));
            }
        }
    }
    d
}

fn ctx() -> ScheduleCtx {
    ScheduleCtx {
        now: SimTime::ZERO,
        line_rate: BitRate::GBPS_10,
        reconfig: SimDuration::from_micros(1),
        epoch: SimDuration::from_micros(100),
        max_entries: 4,
    }
}

fn bench_schedulers(c: &mut Criterion) {
    let mut group = c.benchmark_group("schedule_computation");
    for &n in &[16usize, 64] {
        let demand = hotspot_demand(n);
        let context = ctx();
        let mut cases: Vec<(&str, Box<dyn Scheduler>)> = vec![
            ("tdma", Box::new(TdmaScheduler::new(n))),
            ("islip_i3", Box::new(IslipScheduler::new(n, 3))),
            ("pim_i3", Box::new(PimScheduler::new(n, 3, SimRng::new(3)))),
            ("wavefront", Box::new(WavefrontScheduler::new(n))),
            ("greedy_lqf", Box::new(GreedyLqfScheduler::new())),
            ("hungarian", Box::new(HungarianScheduler::new())),
            ("bvn_p4", Box::new(BvnScheduler::new(4))),
            ("solstice_p4", Box::new(SolsticeScheduler::new(4))),
            ("hotspot_mwm", Box::new(HotspotScheduler::new(100_000))),
        ];
        for (name, sched) in &mut cases {
            group.bench_with_input(BenchmarkId::new(*name, n), &n, |b, _| {
                b.iter(|| black_box(sched.schedule(black_box(&demand), &context)));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_schedulers);
criterion_main!(benches);
