//! Criterion micro-benchmarks of the substrates the simulator's
//! throughput depends on: event queue, histogram recording, classifier
//! lookups, and a small end-to-end run (events/second of the whole
//! framework).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use xds_core::config::NodeConfig;
use xds_core::demand::MirrorEstimator;
use xds_core::node::Workload;
use xds_core::runtime::SimBuilder;
use xds_core::sched::IslipScheduler;
use xds_hw::{HwAlgo, HwSchedulerModel};
use xds_metrics::LatencyHistogram;
use xds_net::classify::{Action, LpmTable, Rule, RuleMatch, RuleTable};
use xds_net::fivetuple::build_udp_frame;
use xds_net::wire::Ipv4Addr;
use xds_net::{FiveTuple, TrafficClass};
use xds_sim::{BitRate, EventQueue, SimDuration, SimRng, SimTime};
use xds_traffic::{FlowGenerator, FlowSizeDist, TrafficMatrix};

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("push_pop_10k", |b| {
        b.iter(|| {
            let mut q: EventQueue<u64> = EventQueue::new();
            let mut rng = SimRng::new(1);
            for i in 0..10_000u64 {
                q.schedule_at(SimTime::from_nanos(rng.below(1_000_000_000)), i);
            }
            let mut acc = 0u64;
            while let Some((_, e)) = q.pop() {
                acc = acc.wrapping_add(e);
            }
            black_box(acc)
        });
    });
    group.finish();
}

fn bench_histogram(c: &mut Criterion) {
    let mut group = c.benchmark_group("latency_histogram");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("record_10k", |b| {
        let mut rng = SimRng::new(2);
        let values: Vec<u64> = (0..10_000).map(|_| rng.below(1_000_000_000)).collect();
        b.iter(|| {
            let mut h = LatencyHistogram::new();
            for &v in &values {
                h.record(v);
            }
            black_box(h.p99())
        });
    });
    group.finish();
}

fn bench_classifier(c: &mut Criterion) {
    let mut group = c.benchmark_group("classification");
    // Parse + TCAM + LPM per frame, like the FPGA lookup stage.
    let mut rules = RuleTable::new(Action::classify(TrafficClass::Short));
    for p in 0..16 {
        rules.insert(Rule {
            priority: p,
            matcher: RuleMatch {
                dst_port: Some((5000 + p as u16 * 10, 5009 + p as u16 * 10)),
                ..RuleMatch::default()
            },
            action: Action::classify(TrafficClass::Interactive),
        });
    }
    let mut lpm: LpmTable<u16> = LpmTable::new();
    for host in 0..256u16 {
        lpm.insert(Ipv4Addr::for_host(host), 32, host);
    }
    let frames: Vec<Vec<u8>> = (0..64u16)
        .map(|i| build_udp_frame(i, (i + 7) % 64, 1000 + i, 5004, b"payload"))
        .collect();
    group.throughput(Throughput::Elements(frames.len() as u64));
    group.bench_function("parse_tcam_lpm_64frames", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for f in &frames {
                let t = FiveTuple::from_frame(f).expect("valid frame");
                let a = rules.lookup(&t);
                acc += lpm.lookup(t.dst).copied().unwrap_or(0) as usize
                    + a.class.is_circuit_candidate() as usize;
            }
            black_box(acc)
        });
    });
    group.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    group.bench_function("hybrid_sim_1ms_8ports", |b| {
        b.iter(|| {
            let n = 8;
            let cfg = NodeConfig::fast(
                n,
                SimDuration::from_micros(1),
                HwSchedulerModel::netfpga_sume(HwAlgo::Islip { iterations: 3 }),
            );
            let w = Workload::flows(FlowGenerator::with_load(
                TrafficMatrix::uniform(n),
                FlowSizeDist::Fixed(150_000),
                0.5,
                BitRate::GBPS_10,
                SimRng::new(4),
            ));
            let r = SimBuilder::new(cfg)
                .workload(w)
                .scheduler(Box::new(IslipScheduler::new(n, 3)))
                .estimator(Box::new(MirrorEstimator::new(n)))
                .build()
                .expect("valid testbed")
                .run(SimTime::from_millis(1));
            black_box(r.delivered_bytes())
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_histogram,
    bench_classifier,
    bench_end_to_end
);
criterion_main!(benches);
