//! Instrumentation-profile equivalence: the profile a run is observed at
//! must never change what the run *does*.
//!
//! Contract (enforced here, relied on by `sweep bench` defaulting to the
//! `lean` profile): for every pinned bench point, the `lean` and
//! `timeseries` profiles produce **exactly** the event count and
//! delivered bytes of the `full` profile. Full fidelity itself is pinned
//! byte-for-byte by the golden-trace tests at the workspace root
//! (`tests/golden_trace.rs`), which run through the same
//! `SimBuilder`/sink machinery.

use xds_bench::bench;
use xds_scenario::{InstrProfile, ScenarioSpec};
use xds_sim::SimDuration;

/// The bench subset at test-friendly horizons (smoke mode, scale points
/// further shortened), keeping every pinned seed and scenario shape.
fn subset() -> Vec<ScenarioSpec> {
    bench::catalogue(true)
        .into_iter()
        .map(|s| {
            if s.n_ports >= 128 {
                s.with_duration(SimDuration::from_micros(300))
            } else {
                s
            }
        })
        .collect()
}

#[test]
fn lean_profile_matches_full_on_every_bench_point() {
    for spec in subset() {
        let full = spec
            .clone()
            .with_profile(InstrProfile::Full)
            .run()
            .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        let lean = spec
            .clone()
            .with_profile(InstrProfile::Lean)
            .run()
            .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        assert_eq!(
            full.events, lean.events,
            "{}: lean changed the event count",
            spec.name
        );
        assert_eq!(
            full.delivered_bytes(),
            lean.delivered_bytes(),
            "{}: lean changed delivered bytes",
            spec.name
        );
        assert_eq!(
            (full.delivered_ocs_bytes, full.delivered_eps_bytes),
            (lean.delivered_ocs_bytes, lean.delivered_eps_bytes),
            "{}: lean moved bytes between planes",
            spec.name
        );
        assert_eq!(
            full.offered_bytes, lean.offered_bytes,
            "{}: lean changed the offered workload",
            spec.name
        );
        assert_eq!(
            full.decisions, lean.decisions,
            "{}: lean changed the decision cadence",
            spec.name
        );
        assert_eq!(
            full.drops.total(),
            lean.drops.total(),
            "{}: lean changed drop accounting",
            spec.name
        );
        // And the lean point actually skipped the observation work.
        assert_eq!(lean.latency_bulk.count(), 0, "{}", spec.name);
        assert_eq!(lean.completed_flows, 0, "{}", spec.name);
    }
}

#[test]
fn timeseries_profile_observes_without_perturbing() {
    // One fast-mode and the slow-mode point are enough: the timeseries
    // probe only adds epoch-boundary reads.
    let picks: Vec<ScenarioSpec> = subset()
        .into_iter()
        .filter(|s| s.name == "uniform/n16" || s.name == "hotspot-sw/n16")
        .collect();
    assert_eq!(picks.len(), 2, "expected both pinned picks");
    for spec in picks {
        let full = spec.clone().with_profile(InstrProfile::Full).run().unwrap();
        let ts = spec
            .clone()
            .with_profile(InstrProfile::TimeSeries)
            .run()
            .unwrap();
        assert_eq!(full.events, ts.events, "{}", spec.name);
        assert_eq!(
            full.delivered_bytes(),
            ts.delivered_bytes(),
            "{}",
            spec.name
        );
        // Full fidelity rides along with the series…
        assert_eq!(
            full.latency_bulk.p99(),
            ts.latency_bulk.p99(),
            "{}",
            spec.name
        );
        assert_eq!(
            full.demand_error_mean, ts.demand_error_mean,
            "{}",
            spec.name
        );
        // …and the series is epoch-resolution.
        let series = ts.timeseries.expect("timeseries profile records");
        assert_eq!(series.len() as u64, ts.decisions, "{}", spec.name);
    }
}

#[test]
fn bench_runs_lean_by_default_and_records_the_profile() {
    // Two 16-port points at smoke horizons keep the unit test fast.
    let specs: Vec<ScenarioSpec> = bench::catalogue(true)
        .into_iter()
        .filter(|s| s.n_ports == 16)
        .take(2)
        .collect();
    let run = bench::run_bench(
        specs,
        "smoke",
        "2026-01-01".into(),
        1,
        InstrProfile::Lean,
        xds_scenario::Fidelity::Exact,
        None,
        |_| {},
    )
    .unwrap();
    assert_eq!(run.profile, "lean");
    assert!(run.to_json(None).contains("\"profile\": \"lean\""));
    assert!(run.total_events() > 0);
}
