//! Shard-count invariance of the parallel simulation core: every pinned
//! bench-subset point must produce **byte-identical** serialized output
//! whether it runs on the classic single-queue core (`shards = 1`) or on
//! 2 or 4 port-group shards, and arbitrary (non-contiguous) port→shard
//! assignments must reproduce the golden `fast_websearch` snapshot
//! byte-for-byte.
//!
//! This is the integration-level face of the determinism contract stated
//! in `xds_core::runtime::shard`: sharding decides *how* the simulation
//! executes (per-shard event queues, VOQ banks and packet pools, windowed
//! between coordinator events), never *what* it computes. Events,
//! delivered bytes, drops, latency distributions and the behavioral
//! counters are invariant in the shard count and in the shape of the
//! shard map; only the structural ledgers (ladder-queue and pool
//! internals) may differ, because K shards own K queues and K pools.

use proptest::prelude::*;
use xds_bench::bench;
use xds_core::{ShardMap, SimBuilder};
use xds_scenario::{library, ScenarioSpec};
use xds_sim::{SimDuration, SimTime};

/// Counters that are shard-count-invariant by contract: pure functions
/// of the scheduler/grant/delivery event sequence, which the sharded
/// core reproduces exactly. The structural ledgers (`queue_*`, `pool_*`)
/// are excluded — they describe the executor's own data structures, of
/// which a K-shard run legitimately has K.
const BEHAVIORAL_COUNTERS: [&str; 15] = [
    "sched_memo_hits",
    "sched_hk_runs",
    "sched_probes",
    "sched_worklist_peak",
    "sched_bucket_peak",
    "grant_bursts",
    "grant_pkts_max",
    "delivery_batches",
    "fault_events_injected",
    "fault_degraded_ns_max",
    "fault_failover_bytes",
    "drop_voq_full",
    "drop_eps_full",
    "drop_sync_violation",
    "drop_link_dark",
];

/// The bench subset at test-friendly horizons (pinned seeds and shapes
/// untouched), with the shard count stripped back to 1 so each point's
/// classic-core run is the reference the sharded runs are held to.
fn subset() -> Vec<ScenarioSpec> {
    bench::catalogue(true)
        .into_iter()
        .map(|s| {
            let d = if s.n_ports >= 1024 {
                SimDuration::from_micros(100)
            } else if s.n_ports >= 128 {
                SimDuration::from_micros(300)
            } else {
                return s.with_shards(1);
            };
            s.with_duration(d).with_shards(1)
        })
        .collect()
}

#[test]
fn bench_subset_is_byte_identical_across_shard_counts() {
    for spec in subset() {
        let reference = spec.run().expect("classic core runs");
        let ref_json = reference.trace_json();
        for k in [2usize, 4] {
            let got = spec
                .clone()
                .with_shards(k)
                .run()
                .unwrap_or_else(|e| panic!("{} at {k} shards: {e}", spec.name));
            assert_eq!(
                got.trace_json(),
                ref_json,
                "{} diverged from the classic core at {k} shards",
                spec.name
            );
            for name in BEHAVIORAL_COUNTERS {
                let pick = |r: &xds_core::RunReport| {
                    r.counters
                        .items()
                        .iter()
                        .find(|(n, _)| *n == name)
                        .map(|&(_, v)| v)
                };
                assert_eq!(
                    pick(&got),
                    pick(&reference),
                    "{}: counter {name} moved at {k} shards",
                    spec.name
                );
            }
        }
    }
}

#[test]
fn faulted_point_reproduces_on_sharded_cores_and_scattered_maps() {
    // Fault injection (link flaps, OCS misfires, scheduler stalls) is
    // coordinator-side and drawn from a dedicated RNG fork, so the
    // faulted trajectory — including every divert, dark-link drop and
    // degraded interval — must be invariant in the shard count *and* in
    // the shape of the port→shard map.
    let spec = library::scenario("fault-storm")
        .expect("catalogue entry")
        .with_ports(8)
        .with_duration(SimDuration::from_millis(2))
        .with_shards(1);
    let reference = spec.run().expect("classic core runs");
    assert!(
        reference.counters.fault_events_injected > 0,
        "the storm plan must actually inject faults"
    );
    assert!(
        reference.fault_degraded_ns > 0,
        "injected link faults must register degraded time"
    );
    let ref_json = reference.trace_json();
    for k in [2usize, 4] {
        let got = spec
            .clone()
            .with_shards(k)
            .run()
            .unwrap_or_else(|e| panic!("faulted run at {k} shards: {e}"));
        assert_eq!(
            got.trace_json(),
            ref_json,
            "faulted run diverged from the classic core at {k} shards"
        );
        assert_eq!(got.fault_degraded_ns, reference.fault_degraded_ns);
        assert_eq!(got.fault_failover_bytes, reference.fault_failover_bytes);
        for (name, v) in got.counters.items() {
            let want = reference
                .counters
                .items()
                .iter()
                .find(|(n, _)| *n == name)
                .map(|&(_, w)| w);
            if BEHAVIORAL_COUNTERS.contains(&name) {
                assert_eq!(Some(v), want, "counter {name} moved at {k} shards");
            }
        }
    }
    // A scattered, unbalanced port→shard assignment goes through the
    // same builder path and must not perturb the faulted trajectory.
    let map = ShardMap::from_assignment(vec![0, 1, 2, 0, 1, 2, 0, 1]).expect("valid map");
    let (cfg, workload, scheduler, estimator) = spec.build().expect("faulted spec builds");
    let got = SimBuilder::new(cfg)
        .workload(workload)
        .scheduler(scheduler)
        .estimator(estimator)
        .instrumentation(spec.profile.instrumentation())
        .faults(spec.faults.clone())
        .shard_map(map)
        .build()
        .expect("faulted sim builds")
        .run(SimTime::ZERO + spec.duration);
    assert_eq!(
        got.trace_json(),
        ref_json,
        "faulted run diverged under a scattered shard map"
    );
    assert_eq!(got.fault_degraded_ns, reference.fault_degraded_ns);
    assert_eq!(got.fault_failover_bytes, reference.fault_failover_bytes);
}

/// The golden fast-mode point, exactly as `tests/golden_trace.rs` pins
/// it: the `websearch` catalogue entry, seed 42, 3 ms.
fn golden_fast_spec() -> ScenarioSpec {
    library::scenario("websearch")
        .expect("catalogue entry")
        .with_name("golden-fast")
        .with_seed(42)
        .with_duration(SimDuration::from_millis(3))
}

fn golden_file(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/golden")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden snapshot {}: {e}", path.display()))
}

/// Runs the golden spec on an explicit (possibly scattered) shard map,
/// through the same builder path `ScenarioSpec::run` uses.
fn run_golden_with_map(map: ShardMap) -> xds_core::RunReport {
    let spec = golden_fast_spec();
    let (cfg, workload, scheduler, estimator) = spec.build().expect("golden spec builds");
    SimBuilder::new(cfg)
        .workload(workload)
        .scheduler(scheduler)
        .estimator(estimator)
        .instrumentation(spec.profile.instrumentation())
        .shard_map(map)
        .build()
        .expect("golden sim builds")
        .run(SimTime::ZERO + spec.duration)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Arbitrary port→shard assignments — scattered, unbalanced, with
    /// any shard count the raw draw induces — reproduce the committed
    /// golden `fast_websearch` trace byte-for-byte, and its pinned
    /// behavioral counters exactly. The shard map is an execution
    /// detail; the golden files don't know it exists.
    #[test]
    fn random_shard_maps_reproduce_the_golden_websearch_point(
        raw in proptest::collection::vec(0usize..4, 8)
    ) {
        // Compress the raw draw to a dense 0..k relabeling (preserving
        // first-appearance order) so it is a valid assignment; the
        // relabeling keeps whatever scatter the draw produced.
        let mut labels: Vec<usize> = Vec::new();
        let assign: Vec<usize> = raw
            .iter()
            .map(|&r| {
                if let Some(pos) = labels.iter().position(|&l| l == r) {
                    pos
                } else {
                    labels.push(r);
                    labels.len() - 1
                }
            })
            .collect();
        let map = ShardMap::from_assignment(assign.clone())
            .unwrap_or_else(|e| panic!("compressed assignment {assign:?} invalid: {e}"));
        let report = run_golden_with_map(map);
        prop_assert_eq!(
            report.trace_json(),
            golden_file("fast_websearch.json"),
            "shard map {:?} drifted from the golden trace",
            assign
        );
        let golden_counters = golden_file("fast_websearch.counters.txt");
        for name in BEHAVIORAL_COUNTERS {
            let want = golden_counters
                .lines()
                .find_map(|l| l.strip_prefix(&format!("{name} ")))
                .unwrap_or_else(|| panic!("golden counters lack {name}"))
                .to_string();
            let have = report
                .counters
                .items()
                .iter()
                .find(|(n, _)| *n == name)
                .map(|&(_, v)| v.to_string())
                .unwrap_or_else(|| panic!("report lacks counter {name}"));
            prop_assert_eq!(have, want, "counter {} moved under map {:?}", name, assign);
        }
    }
}
