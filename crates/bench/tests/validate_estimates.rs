//! The estimate tier's contract, end to end: the validation harness
//! covers whatever subset it is given, its error envelope is finite,
//! and estimate-tier sweeps honor the same thread-count determinism
//! the exact tier is held to (`bench_determinism`-style coverage).

use xds_bench::bench::catalogue;
use xds_bench::validate::{run_validation, VALIDATED_METRICS};
use xds_scenario::{Fidelity, ScenarioSpec, SweepExecutor};

/// The small catalogue points: enough to exercise every code path in
/// the harness while keeping the exact-tier runs test-sized (the full
/// catalogue — kilofabric rungs included — runs in CI via
/// `sweep validate-estimates --smoke` on the release binary).
fn small_subset() -> Vec<ScenarioSpec> {
    let specs: Vec<ScenarioSpec> = catalogue(true)
        .into_iter()
        .filter(|s| s.n_ports <= 16)
        .collect();
    assert!(specs.len() >= 4, "smoke catalogue lost its 16-port points");
    specs
}

#[test]
fn validation_covers_every_given_point_with_finite_errors() {
    let specs = small_subset();
    let names: Vec<String> = specs.iter().map(|s| s.name.clone()).collect();
    let run = run_validation(specs, "smoke", "2026-01-01".into(), None, |_| {}).unwrap();
    assert_eq!(run.rows.len(), names.len());
    let json = run.to_json();
    let csv = run.to_csv();
    for name in &names {
        assert!(
            run.rows.iter().any(|r| &r.name == name),
            "row missing for {name}"
        );
        assert!(
            json.contains(&format!("\"name\": \"{name}\"")),
            "{name} not in JSON"
        );
        assert!(csv.contains(&format!("{name},")), "{name} not in CSV");
    }
    for r in &run.rows {
        assert!(!r.errors.is_empty(), "{}: nothing compared", r.name);
        for e in &r.errors {
            assert!(
                e.rel_err.is_finite(),
                "{}/{}: error not finite ({} vs {})",
                r.name,
                e.metric,
                e.estimate,
                e.exact
            );
            assert!(
                VALIDATED_METRICS.contains(&e.metric),
                "unexpected metric {}",
                e.metric
            );
        }
    }
    // The faulted point must be covered too: mini-sim path, not just
    // the closed-form one.
    assert!(
        run.rows.iter().any(|r| r.name.starts_with("fault-storm")),
        "the faulted catalogue point must be validated"
    );
}

#[test]
fn estimate_tier_sweep_is_thread_count_invariant_on_catalogue_points() {
    let specs: Vec<ScenarioSpec> = small_subset()
        .into_iter()
        .map(|s| s.with_fidelity(Fidelity::Estimate))
        .collect();
    let a = SweepExecutor::with_threads(1).run(specs.clone());
    let b = SweepExecutor::with_threads(2).run(specs.clone());
    let c = SweepExecutor::with_threads(8).run(specs);
    assert!(a.points.iter().all(|p| p.report.is_ok()));
    assert_eq!(a.to_json(), b.to_json());
    assert_eq!(b.to_json(), c.to_json());
    assert_eq!(a.to_csv(), c.to_csv());
    // Estimate rows declare their tier in the artifacts.
    assert!(a.to_json().contains("\"fidelity\": \"estimate\""));
}
