//! Determinism of the perf-baseline subset across worker counts: the
//! `sweep bench` points (including the 128/256-port `scale-stress`
//! scenario) must produce **byte-identical** serialized output whether
//! the sweep runs on 1, 2 or 8 threads. This extends the original
//! small-scenario determinism test to the exact workloads the perf
//! trajectory is pinned to — a hot-path change that races or reorders
//! anything shows up here as a serialization diff.

use xds_bench::bench;
use xds_scenario::{library, ScenarioSpec, SweepExecutor};
use xds_sim::SimDuration;

/// The bench subset, shrunk to test-friendly horizons while keeping the
/// pinned seeds and every scenario shape (both scale-stress sizes
/// included).
fn subset() -> Vec<ScenarioSpec> {
    bench::catalogue(true)
        .into_iter()
        .map(|s| {
            // Large fabrics get a further-reduced horizon so the test
            // stays fast; seeds and shapes are untouched.
            if s.n_ports >= 128 {
                s.with_duration(SimDuration::from_micros(300))
            } else {
                s
            }
        })
        .collect()
}

#[test]
fn bench_subset_is_byte_identical_across_thread_counts() {
    let specs = subset();
    for ports in [128, 256, 512, 1024, 2048] {
        assert!(
            specs.iter().any(|s| s.n_ports == ports),
            "subset must include the scale-stress point at {ports} ports"
        );
    }
    // The largest rungs run on the sharded core inside sweep worker
    // threads — shard windows nested under sweep parallelism must stay
    // under the same byte-identical contract as everything else.
    assert!(
        specs.iter().any(|s| s.shards > 1),
        "subset must exercise the sharded core"
    );
    // The non-mirror estimator points (ground-truth snapshot + L1 epoch
    // path) are under the same determinism contract.
    for name in ["uniform-ewma/n16", "uniform-countmin/n16"] {
        assert!(
            specs.iter().any(|s| s.name == name),
            "subset must include {name}"
        );
    }
    // The fault-storm point keeps failover (link flaps, misfires,
    // stalls) under the same byte-identity contract: fault events are
    // coordinator-side draws from a dedicated RNG fork, so they must
    // land identically regardless of sweep parallelism.
    assert!(
        specs.iter().any(
            |s| s.name == "fault-storm/n16" && s.faults.as_ref().is_some_and(|p| p.is_active())
        ),
        "subset must include the armed fault-storm point"
    );
    let reference = SweepExecutor::with_threads(1).run(specs.clone());
    let ref_json = reference.to_json();
    let ref_csv = reference.to_csv();
    assert!(
        reference.points.iter().all(|p| p.report.is_ok()),
        "every bench point must run"
    );
    let storm = reference
        .points
        .iter()
        .find(|p| p.spec.name == "fault-storm/n16")
        .and_then(|p| p.report.as_ref().ok())
        .expect("fault-storm point runs");
    assert!(
        storm.counters.fault_events_injected > 0,
        "the storm plan must actually inject faults"
    );
    assert!(
        storm.fault_degraded_ns > 0,
        "injected link faults must register degraded time"
    );
    for threads in [2usize, 8] {
        let got = SweepExecutor::with_threads(threads).run(specs.clone());
        assert_eq!(
            got.to_json(),
            ref_json,
            "JSON diverged at {threads} threads"
        );
        assert_eq!(got.to_csv(), ref_csv, "CSV diverged at {threads} threads");
    }
}

#[test]
fn counters_columns_are_byte_identical_across_thread_counts() {
    // The internal-counters registry (scheduler memo/HK/probe tallies,
    // ladder-queue spreads/spills, pool high-water marks, grant-burst
    // shape) is simulation-domain only — a pure function of the seeded
    // event sequence. Serialized with `--counters` it must therefore be
    // byte-identical across sweep thread counts, same as the classic
    // columns. A wall-clock value leaking into a counter shows up here.
    let specs: Vec<ScenarioSpec> = subset().into_iter().filter(|s| s.n_ports <= 256).collect();
    assert!(
        specs.len() >= 4,
        "filtered subset still spans the hot paths"
    );
    let reference = SweepExecutor::with_threads(1).run(specs.clone());
    let ref_json = reference.to_json_with(true);
    let ref_csv = reference.to_csv_with(true);
    for name in xds_core::CounterSet::names() {
        assert!(
            ref_csv.lines().next().unwrap().contains(name),
            "counters CSV header must carry {name}"
        );
    }
    // At least one point must actually tick the scheduler counters —
    // all-zero columns would make this test vacuous.
    assert!(
        reference
            .points
            .iter()
            .filter_map(|p| p.report.as_ref().ok())
            .any(|r| r.counters.pool_allocs > 0 && r.counters.grant_bursts > 0),
        "counters never ticked across the whole subset"
    );
    for threads in [2usize, 8] {
        let got = SweepExecutor::with_threads(threads).run(specs.clone());
        assert_eq!(
            got.to_json_with(true),
            ref_json,
            "counters JSON diverged at {threads} threads"
        );
        assert_eq!(
            got.to_csv_with(true),
            ref_csv,
            "counters CSV diverged at {threads} threads"
        );
    }
}

#[test]
fn scale_stress_trace_is_byte_identical_across_repeats() {
    // Repeatability of the full report serialization (deeper than the
    // sweep row): the scale point exercises the schedule slab, the
    // chunked VOQ pool and the radix release queue at fabric scale.
    let spec = library::scenario("scale-stress")
        .expect("catalogue entry")
        .with_seed(15)
        .with_duration(SimDuration::from_micros(500));
    let a = spec.run().expect("runs").trace_json();
    let b = spec.run().expect("runs").trace_json();
    assert_eq!(a, b);
}
