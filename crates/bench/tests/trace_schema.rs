//! Flight-recorder schema round-trip: a traced end-to-end run must emit
//! Chrome Trace Event Format JSON that our own hand-rolled validator
//! (the same contract chrome://tracing and Perfetto parse) accepts, with
//! every span family the recorder promises. The validator is strict —
//! it re-parses the serialized string, not the in-memory events — so a
//! writer bug (unescaped name, truncated object, non-numeric ts) fails
//! here before anyone loads a broken artifact into a trace viewer.

use xds_core::validate_chrome_trace;
use xds_scenario::library;
use xds_sim::SimDuration;

#[test]
fn traced_scale_stress_run_round_trips_through_the_validator() {
    let report = library::scenario("scale-stress-256")
        .expect("library entry")
        .with_duration(SimDuration::from_micros(500))
        .with_trace(true)
        .run()
        .expect("traced run completes");
    let json = report
        .chrome_trace
        .as_deref()
        .expect("trace requested, trace present");
    let summary = validate_chrome_trace(json).expect("recorder output must validate");
    assert!(summary.complete_events > 0, "trace must not be empty");
    // The three epoch phases plus the parent span.
    for name in ["epoch", "estimate", "decompose", "apply"] {
        assert!(summary.names.contains(name), "missing span family {name}");
    }
    // Scheduler interior: the threshold probe always runs; matching is
    // either a fresh Hopcroft-Karp pass or a memo hit per configuration.
    assert!(summary.names.contains("probe"), "missing scheduler probes");
    assert!(
        summary.names.contains("match_hk") || summary.names.contains("match_memo"),
        "missing matching spans: {:?}",
        summary.names
    );
    // Slot-domain spans: grant bursts at activation.
    assert!(summary.names.contains("grant_burst"), "missing slot spans");
}

#[test]
fn validator_rejects_what_the_recorder_never_writes() {
    // Round-trip means the validator is not a rubber stamp: mangled
    // variants of a valid trace must be rejected with a reason.
    let report = library::scenario("uniform")
        .expect("library entry")
        .with_ports(4)
        .with_duration(SimDuration::from_millis(1))
        .with_trace(true)
        .run()
        .expect("traced run completes");
    let json = report.chrome_trace.expect("trace present");
    validate_chrome_trace(&json).expect("pristine trace validates");
    let truncated = &json[..json.len() / 2];
    assert!(validate_chrome_trace(truncated).is_err(), "truncation");
    let no_events = json.replacen("\"traceEvents\"", "\"otherEvents\"", 1);
    assert!(validate_chrome_trace(&no_events).is_err(), "renamed array");
}
