//! Property tests for the simulation kernel.

use proptest::prelude::*;
use xds_sim::{BitRate, EventQueue, SimDuration, SimRng, SimTime, TokenBucket};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Events come out sorted by time, with insertion order breaking ties.
    #[test]
    fn event_queue_is_a_stable_priority_queue(times in proptest::collection::vec(0u64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule_at(SimTime::from_nanos(t), i);
        }
        let mut popped: Vec<(u64, usize)> = Vec::new();
        while let Some((t, i)) = q.pop() {
            popped.push((t.as_nanos(), i));
        }
        prop_assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time order violated");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "insertion order violated at tie");
            }
        }
    }

    /// Differential test of the ladder queue against a naive reference
    /// model: interleaved schedules (with delays spanning 0 ns to ms,
    /// mimicking the simulator's packet/epoch/app mix) and pops must
    /// deliver the byte-identical `(time, payload)` sequence a total
    /// `(time, insertion)` sort would — the property the golden traces
    /// rely on when the queue's internals change.
    #[test]
    fn ladder_queue_matches_reference_model(
        ops in proptest::collection::vec((0u8..4, 0u64..u64::MAX), 1..400),
    ) {
        let mut q = EventQueue::new();
        // Reference: (time, seq) keyed min-list.
        let mut model: Vec<(u64, u64, u64)> = Vec::new();
        let mut next_seq = 0u64;
        let mut now = 0u64;
        let mut popped = Vec::new();
        let mut expected = Vec::new();
        for &(kind, r) in &ops {
            match kind {
                // Schedule with a delay profile chosen by `kind`/`r`.
                0..=2 => {
                    let delay = match kind {
                        0 => r % 4,            // same-instant / near ties
                        1 => 500 + r % 3_000,  // ~µs packet events
                        _ => r % 2_000_000,    // up to ms timers
                    };
                    let t = now + delay;
                    q.schedule_at(SimTime::from_nanos(t), next_seq);
                    model.push((t, next_seq, next_seq));
                    next_seq += 1;
                }
                _ => {
                    // Pop from both, compare.
                    let got = q.pop();
                    let want = model
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, &(t, s, _))| (t, s))
                        .map(|(i, _)| i);
                    match (got, want) {
                        (None, None) => {}
                        (Some((t, p)), Some(i)) => {
                            let (mt, _, mp) = model.swap_remove(i);
                            now = mt;
                            popped.push((t.as_nanos(), p));
                            expected.push((mt, mp));
                        }
                        (g, w) => prop_assert!(false, "pop mismatch: {g:?} vs model {w:?}"),
                    }
                }
            }
        }
        // Drain the remainder.
        while let Some((t, p)) = q.pop() {
            popped.push((t.as_nanos(), p));
        }
        model.sort_unstable_by_key(|&(t, s, _)| (t, s));
        expected.extend(model.iter().map(|&(t, _, p)| (t, p)));
        prop_assert_eq!(popped, expected);
    }

    /// The clock equals the timestamp of the last popped event, always.
    #[test]
    fn clock_tracks_pops(times in proptest::collection::vec(0u64..1_000, 1..100)) {
        let mut q = EventQueue::new();
        for &t in &times {
            q.schedule_at(SimTime::from_nanos(t), ());
        }
        while let Some((t, _)) = q.pop() {
            prop_assert_eq!(q.now(), t);
        }
    }

    /// A token bucket never lets more than `burst + rate·t` bytes through.
    #[test]
    fn token_bucket_enforces_long_run_rate(requests in proptest::collection::vec((0u64..5_000, 1u64..3_000), 1..200)) {
        let rate = BitRate::from_mbps(800); // 100 MB/s
        let burst = 10_000u64;
        let mut tb = TokenBucket::new(rate, burst);
        let mut now = SimTime::ZERO;
        let mut granted = 0u64;
        for &(gap_ns, bytes) in &requests {
            now += SimDuration::from_nanos(gap_ns);
            if tb.try_consume(now, bytes) {
                granted += bytes;
            }
        }
        let elapsed = now.as_nanos() as f64 / 1e9;
        let bound = burst as f64 + rate.bytes_per_sec() as f64 * elapsed + 1.0;
        prop_assert!(
            (granted as f64) <= bound,
            "granted {granted} exceeds bound {bound}"
        );
    }

    /// tx_time and bytes_in are mutually consistent for any rate/size.
    #[test]
    fn rate_conversions_are_consistent(gbps in 1u64..400, bytes in 1u64..10_000_000) {
        let r = BitRate::from_gbps(gbps);
        let t = r.tx_time(bytes);
        // Transmitting for exactly t must allow at least `bytes` (tx_time
        // rounds up) and no more than `bytes + rate·1ns` extra.
        let fit = r.bytes_in(t);
        prop_assert!(fit >= bytes, "bytes_in({t}) = {fit} < {bytes}");
        let slack = r.bytes_per_sec() / 1_000_000_000 + 1;
        prop_assert!(fit <= bytes + slack, "fit {fit} way over {bytes}");
    }

    /// Forked RNG streams never mirror their parent.
    #[test]
    fn forked_streams_diverge(seed in any::<u64>()) {
        let mut parent = SimRng::new(seed);
        let mut child = parent.fork();
        let overlap = (0..64).filter(|_| parent.next_u64() == child.next_u64()).count();
        prop_assert!(overlap < 4);
    }
}
