//! Sampling distributions for workload generation.
//!
//! The traffic generators need heavy-tailed flow sizes (bounded Pareto,
//! log-normal, empirical CDFs lifted from published data-center measurement
//! studies) and skewed destination choices (Zipf). All samplers draw from
//! [`SimRng`] so runs stay deterministic.

use crate::rng::SimRng;

/// Anything that can produce an `f64` sample.
pub trait Sample {
    /// Draws one sample.
    fn sample(&self, rng: &mut SimRng) -> f64;

    /// The distribution's mean, if known in closed form. Used by load
    /// calculations in the traffic generators.
    fn mean(&self) -> Option<f64> {
        None
    }
}

/// A closed set of distributions, enum-dispatched so workload configs stay
/// plain data (no trait objects to clone or compare).
#[derive(Debug, Clone, PartialEq)]
pub enum Dist {
    /// Always returns the same value.
    Constant(f64),
    /// Uniform on `[lo, hi)`.
    Uniform {
        /// Inclusive lower bound.
        lo: f64,
        /// Exclusive upper bound.
        hi: f64,
    },
    /// Exponential with the given mean.
    Exp {
        /// Mean of the distribution (1/λ).
        mean: f64,
    },
    /// Pareto with optional upper truncation (resampling at the cap keeps
    /// the tail shape below it).
    Pareto {
        /// Scale (minimum value), > 0.
        scale: f64,
        /// Tail index α, > 0. α ≤ 1 has an infinite mean.
        shape: f64,
        /// Optional upper bound; samples above it are clamped.
        cap: Option<f64>,
    },
    /// Log-normal with the given parameters of the underlying normal.
    LogNormal {
        /// Mean of the underlying normal.
        mu: f64,
        /// Standard deviation of the underlying normal, ≥ 0.
        sigma: f64,
    },
    /// Piecewise-linear empirical CDF.
    Empirical(EmpiricalCdf),
}

impl Dist {
    /// Validates parameters, returning a description of the first problem.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            Dist::Constant(v) => {
                if !v.is_finite() {
                    return Err(format!("constant must be finite, got {v}"));
                }
            }
            Dist::Uniform { lo, hi } => {
                if !(lo.is_finite() && hi.is_finite() && lo < hi) {
                    return Err(format!("uniform needs lo < hi, got [{lo}, {hi})"));
                }
            }
            Dist::Exp { mean } => {
                if !(mean.is_finite() && *mean > 0.0) {
                    return Err(format!("exponential mean must be > 0, got {mean}"));
                }
            }
            Dist::Pareto { scale, shape, cap } => {
                if !(scale.is_finite() && *scale > 0.0) {
                    return Err(format!("pareto scale must be > 0, got {scale}"));
                }
                if !(shape.is_finite() && *shape > 0.0) {
                    return Err(format!("pareto shape must be > 0, got {shape}"));
                }
                if let Some(c) = cap {
                    if c < scale {
                        return Err(format!("pareto cap {c} below scale {scale}"));
                    }
                }
            }
            Dist::LogNormal { mu, sigma } => {
                if !(mu.is_finite() && sigma.is_finite() && *sigma >= 0.0) {
                    return Err(format!(
                        "lognormal needs finite mu and sigma ≥ 0, got ({mu}, {sigma})"
                    ));
                }
            }
            Dist::Empirical(cdf) => cdf.validate()?,
        }
        Ok(())
    }
}

impl Sample for Dist {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        match self {
            Dist::Constant(v) => *v,
            Dist::Uniform { lo, hi } => lo + (hi - lo) * rng.f64(),
            Dist::Exp { mean } => rng.exp(*mean),
            Dist::Pareto { scale, shape, cap } => {
                let u = loop {
                    let u = rng.f64();
                    if u > 0.0 {
                        break u;
                    }
                };
                let x = scale / u.powf(1.0 / shape);
                match cap {
                    Some(c) => x.min(*c),
                    None => x,
                }
            }
            Dist::LogNormal { mu, sigma } => (mu + sigma * rng.gaussian()).exp(),
            Dist::Empirical(cdf) => cdf.sample(rng),
        }
    }

    fn mean(&self) -> Option<f64> {
        match self {
            Dist::Constant(v) => Some(*v),
            Dist::Uniform { lo, hi } => Some(0.5 * (lo + hi)),
            Dist::Exp { mean } => Some(*mean),
            Dist::Pareto {
                scale,
                shape,
                cap: None,
            } => {
                if *shape > 1.0 {
                    Some(shape * scale / (shape - 1.0))
                } else {
                    None
                }
            }
            // The truncated-Pareto mean exists but the closed form is messy;
            // callers use the empirical mean instead.
            Dist::Pareto { cap: Some(_), .. } => None,
            Dist::LogNormal { mu, sigma } => Some((mu + 0.5 * sigma * sigma).exp()),
            Dist::Empirical(cdf) => Some(cdf.mean()),
        }
    }
}

/// A piecewise-linear inverse-CDF sampler built from `(value, cumulative
/// probability)` knots, the standard way to encode published flow-size
/// distributions (web-search, data-mining, …).
#[derive(Debug, Clone, PartialEq)]
pub struct EmpiricalCdf {
    points: Vec<(f64, f64)>,
}

impl EmpiricalCdf {
    /// Builds a CDF from knots. Knots must be non-empty, have strictly
    /// increasing values, non-decreasing probabilities, and end at
    /// probability 1.0. A starting knot at probability 0.0 is implied at the
    /// first value if not present.
    pub fn new(mut points: Vec<(f64, f64)>) -> Result<Self, String> {
        if points.is_empty() {
            return Err("empirical CDF needs at least one knot".into());
        }
        if points[0].1 > 0.0 {
            points.insert(0, (points[0].0, 0.0));
        }
        let cdf = EmpiricalCdf { points };
        cdf.validate()?;
        Ok(cdf)
    }

    fn validate(&self) -> Result<(), String> {
        let pts = &self.points;
        for w in pts.windows(2) {
            if w[1].0 < w[0].0 {
                return Err(format!(
                    "CDF values must be non-decreasing: {} after {}",
                    w[1].0, w[0].0
                ));
            }
            if w[1].1 < w[0].1 {
                return Err(format!(
                    "CDF probabilities must be non-decreasing: {} after {}",
                    w[1].1, w[0].1
                ));
            }
        }
        let last = pts.last().expect("non-empty");
        if (last.1 - 1.0).abs() > 1e-9 {
            return Err(format!(
                "CDF must end at probability 1.0, ends at {}",
                last.1
            ));
        }
        Ok(())
    }

    /// Inverse-CDF draw with linear interpolation between knots.
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        let u = rng.f64();
        self.quantile(u)
    }

    /// The value at cumulative probability `u` (clamped to `[0, 1]`).
    pub fn quantile(&self, u: f64) -> f64 {
        let u = u.clamp(0.0, 1.0);
        let pts = &self.points;
        if u <= pts[0].1 {
            return pts[0].0;
        }
        for w in pts.windows(2) {
            let (v0, p0) = w[0];
            let (v1, p1) = w[1];
            if u <= p1 {
                if p1 == p0 {
                    return v1;
                }
                let t = (u - p0) / (p1 - p0);
                return v0 + t * (v1 - v0);
            }
        }
        pts.last().expect("non-empty").0
    }

    /// Mean of the piecewise-linear distribution (trapezoid rule over the
    /// inverse CDF).
    pub fn mean(&self) -> f64 {
        let pts = &self.points;
        let mut acc = 0.0;
        for w in pts.windows(2) {
            let (v0, p0) = w[0];
            let (v1, p1) = w[1];
            acc += (p1 - p0) * 0.5 * (v0 + v1);
        }
        acc
    }
}

/// Zipf-distributed index sampler over `0..n` with exponent `s`
/// (precomputed CDF; O(log n) per draw).
#[derive(Debug, Clone, PartialEq)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a sampler over `n` ranks with exponent `s ≥ 0` (s = 0 is
    /// uniform).
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is negative/non-finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s.is_finite() && s >= 0.0, "Zipf exponent must be ≥ 0");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for p in &mut cdf {
            *p /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when there is exactly one rank (sampling is then constant).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Draws a rank in `0..n`; rank 0 is the most popular.
    pub fn sample_index(&self, rng: &mut SimRng) -> usize {
        let u = rng.f64();
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("CDF is finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_of(d: &Dist, seed: u64, n: usize) -> f64 {
        let mut rng = SimRng::new(seed);
        (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn constant_is_constant() {
        let d = Dist::Constant(7.5);
        let mut rng = SimRng::new(1);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 7.5);
        }
        assert_eq!(d.mean(), Some(7.5));
    }

    #[test]
    fn uniform_bounds_and_mean() {
        let d = Dist::Uniform { lo: 2.0, hi: 4.0 };
        let mut rng = SimRng::new(2);
        for _ in 0..10_000 {
            let x = d.sample(&mut rng);
            assert!((2.0..4.0).contains(&x));
        }
        assert!((mean_of(&d, 3, 100_000) - 3.0).abs() < 0.02);
    }

    #[test]
    fn exponential_mean_matches() {
        let d = Dist::Exp { mean: 123.0 };
        let m = mean_of(&d, 4, 200_000);
        assert!((m - 123.0).abs() / 123.0 < 0.02, "mean {m}");
    }

    #[test]
    fn pareto_min_and_tail() {
        let d = Dist::Pareto {
            scale: 10.0,
            shape: 1.5,
            cap: None,
        };
        let mut rng = SimRng::new(5);
        let mut above_100 = 0usize;
        for _ in 0..100_000 {
            let x = d.sample(&mut rng);
            assert!(x >= 10.0);
            if x > 100.0 {
                above_100 += 1;
            }
        }
        // P(X > 100) = (10/100)^1.5 ≈ 0.0316
        let frac = above_100 as f64 / 100_000.0;
        assert!((frac - 0.0316).abs() < 0.005, "tail fraction {frac}");
        // analytic mean α·m/(α−1) = 30
        assert_eq!(d.mean(), Some(30.0));
    }

    #[test]
    fn pareto_cap_clamps() {
        let d = Dist::Pareto {
            scale: 10.0,
            shape: 0.5,
            cap: Some(1000.0),
        };
        let mut rng = SimRng::new(6);
        for _ in 0..50_000 {
            let x = d.sample(&mut rng);
            assert!((10.0..=1000.0).contains(&x));
        }
    }

    #[test]
    fn lognormal_mean() {
        let d = Dist::LogNormal {
            mu: 1.0,
            sigma: 0.5,
        };
        let expect = (1.0f64 + 0.125).exp();
        let m = mean_of(&d, 7, 300_000);
        assert!((m - expect).abs() / expect < 0.02, "mean {m} vs {expect}");
        assert_eq!(d.mean(), Some(expect));
    }

    #[test]
    fn validation_catches_bad_parameters() {
        assert!(Dist::Uniform { lo: 1.0, hi: 1.0 }.validate().is_err());
        assert!(Dist::Exp { mean: 0.0 }.validate().is_err());
        assert!(Dist::Pareto {
            scale: -1.0,
            shape: 1.0,
            cap: None
        }
        .validate()
        .is_err());
        assert!(Dist::Pareto {
            scale: 10.0,
            shape: 1.0,
            cap: Some(5.0)
        }
        .validate()
        .is_err());
        assert!(Dist::LogNormal {
            mu: 0.0,
            sigma: -1.0
        }
        .validate()
        .is_err());
        assert!(Dist::Constant(f64::NAN).validate().is_err());
        assert!(Dist::Uniform { lo: 0.0, hi: 1.0 }.validate().is_ok());
    }

    #[test]
    fn empirical_cdf_interpolates() {
        let cdf = EmpiricalCdf::new(vec![(0.0, 0.0), (10.0, 0.5), (100.0, 1.0)]).unwrap();
        assert_eq!(cdf.quantile(0.0), 0.0);
        assert_eq!(cdf.quantile(0.25), 5.0);
        assert_eq!(cdf.quantile(0.5), 10.0);
        assert_eq!(cdf.quantile(0.75), 55.0);
        assert_eq!(cdf.quantile(1.0), 100.0);
    }

    #[test]
    fn empirical_cdf_mean_by_trapezoid() {
        let cdf = EmpiricalCdf::new(vec![(0.0, 0.0), (10.0, 1.0)]).unwrap();
        assert!((cdf.mean() - 5.0).abs() < 1e-12);
        let d = Dist::Empirical(cdf);
        let m = mean_of(&d, 8, 100_000);
        assert!((m - 5.0).abs() < 0.05, "mean {m}");
    }

    #[test]
    fn empirical_cdf_rejects_bad_knots() {
        assert!(EmpiricalCdf::new(vec![]).is_err());
        assert!(EmpiricalCdf::new(vec![(0.0, 0.0), (1.0, 0.5)]).is_err()); // doesn't end at 1
        assert!(EmpiricalCdf::new(vec![(5.0, 0.0), (1.0, 1.0)]).is_err()); // values decrease
        assert!(EmpiricalCdf::new(vec![(0.0, 0.5), (1.0, 0.2), (2.0, 1.0)]).is_err());
        // probs decrease
    }

    #[test]
    fn empirical_cdf_implied_zero_knot() {
        // A CDF whose first knot has positive probability gets an implied
        // starting knot, making the minimum value attainable.
        let cdf = EmpiricalCdf::new(vec![(4.0, 0.3), (8.0, 1.0)]).unwrap();
        assert_eq!(cdf.quantile(0.0), 4.0);
        assert_eq!(cdf.quantile(0.3), 4.0);
    }

    #[test]
    fn zipf_is_skewed_and_in_bounds() {
        let z = Zipf::new(100, 1.2);
        let mut rng = SimRng::new(9);
        let mut counts = vec![0u32; 100];
        for _ in 0..100_000 {
            counts[z.sample_index(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10], "rank 0 should dominate rank 10");
        assert!(counts[0] > counts[99] * 5, "head should dwarf tail");
    }

    #[test]
    fn zipf_zero_exponent_is_uniform() {
        let z = Zipf::new(10, 0.0);
        let mut rng = SimRng::new(10);
        let mut counts = vec![0u32; 10];
        for _ in 0..100_000 {
            counts[z.sample_index(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((8_500..11_500).contains(&c), "bucket {c} not uniform");
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let d = Dist::LogNormal {
            mu: 2.0,
            sigma: 1.0,
        };
        let a: Vec<f64> = {
            let mut rng = SimRng::new(77);
            (0..32).map(|_| d.sample(&mut rng)).collect()
        };
        let b: Vec<f64> = {
            let mut rng = SimRng::new(77);
            (0..32).map(|_| d.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
