//! A bounded, timestamped trace ring for debugging event-driven logic.
//!
//! Simulations emit far too many events to log unconditionally; the ring
//! keeps the most recent `capacity` entries so a failing test or an
//! assertion handler can dump the recent history (the same idea as a
//! hardware trace buffer on the NetFPGA).

use std::collections::VecDeque;

use crate::time::SimTime;

/// Fixed-capacity ring of `(time, entry)` pairs; pushing beyond capacity
/// evicts the oldest entry.
#[derive(Debug, Clone)]
pub struct TraceRing<T> {
    buf: VecDeque<(SimTime, T)>,
    capacity: usize,
    dropped: u64,
}

impl<T> TraceRing<T> {
    /// Creates a ring holding at most `capacity` entries.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "trace ring capacity must be positive");
        TraceRing {
            buf: VecDeque::with_capacity(capacity),
            capacity,
            dropped: 0,
        }
    }

    /// Records an entry, evicting the oldest if full.
    pub fn push(&mut self, at: SimTime, entry: T) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back((at, entry));
    }

    /// Iterates oldest → newest.
    pub fn iter(&self) -> impl Iterator<Item = &(SimTime, T)> {
        self.buf.iter()
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been recorded (or everything was evicted —
    /// impossible, eviction only happens on push).
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Entries evicted so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Removes all entries.
    pub fn clear(&mut self) {
        self.buf.clear();
    }
}

impl<T: std::fmt::Debug> TraceRing<T> {
    /// Renders the retained history, one entry per line, for test-failure
    /// dumps.
    pub fn dump(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        if self.dropped > 0 {
            let _ = writeln!(out, "... {} earlier entries dropped ...", self.dropped);
        }
        for (t, e) in &self.buf {
            let _ = writeln!(out, "[{t}] {e:?}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_most_recent() {
        let mut ring = TraceRing::new(3);
        for i in 0..5 {
            ring.push(SimTime::from_nanos(i), i);
        }
        let kept: Vec<u64> = ring.iter().map(|&(_, e)| e).collect();
        assert_eq!(kept, vec![2, 3, 4]);
        assert_eq!(ring.dropped(), 2);
        assert_eq!(ring.len(), 3);
    }

    #[test]
    fn dump_mentions_drops() {
        let mut ring = TraceRing::new(1);
        ring.push(SimTime::from_nanos(1), "a");
        ring.push(SimTime::from_nanos(2), "b");
        let dump = ring.dump();
        assert!(dump.contains("1 earlier entries dropped"));
        assert!(dump.contains("\"b\""));
        assert!(!dump.contains("\"a\""));
    }

    #[test]
    fn clear_empties() {
        let mut ring = TraceRing::new(2);
        ring.push(SimTime::ZERO, ());
        ring.clear();
        assert!(ring.is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        TraceRing::<()>::new(0);
    }
}
