//! # xds-sim — deterministic discrete-event simulation kernel
//!
//! This crate is the foundation of the `xdsched` workspace. It provides the
//! pieces every other crate builds on:
//!
//! * [`SimTime`] / [`SimDuration`] — nanosecond-resolution simulated time.
//!   Optical switching times in the reproduced paper span *nanoseconds to
//!   milliseconds*, so the kernel works in integer nanoseconds throughout and
//!   never touches floating point on the hot path.
//! * [`EventQueue`] / [`Simulation`] — a stable-order event queue (ties in
//!   time are broken by insertion sequence) and a driver loop. The queue is
//!   generic over the event payload so domain crates define their own event
//!   enums and keep full ownership of their state: no `Box<dyn Fn>`
//!   trampolines, no interior mutability.
//! * [`SimRng`] — a self-contained xoshiro256\*\* PRNG seeded via splitmix64.
//!   Every run in the workspace is reproducible from a single `u64` seed;
//!   independent sub-streams are created with [`SimRng::fork`].
//! * [`dist`] — sampling distributions used by the traffic generators
//!   (uniform, exponential, bounded Pareto, log-normal, empirical CDF, Zipf).
//! * [`rate`] — bit-rate arithmetic ([`BitRate`], transmission times, token
//!   buckets).
//! * [`trace`] — a bounded trace ring for debugging event-driven logic.
//!
//! The design follows the session's networking guides: a synchronous,
//! poll/event-driven core in the smoltcp tradition. The workload is CPU-bound
//! simulation, which the Tokio documentation itself calls out as the case
//! where an async runtime adds nothing — so there is none here.

#![warn(missing_docs)]

pub mod dist;
pub mod event;
pub mod rate;
pub mod rng;
pub mod time;
pub mod trace;

pub use dist::{Dist, EmpiricalCdf, Sample, Zipf};
pub use event::{EventQueue, RunStats, Simulation};
pub use rate::{BitRate, TokenBucket, TxTimeCache};
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
