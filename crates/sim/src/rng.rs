//! Deterministic pseudo-random number generation.
//!
//! The workspace requires bit-for-bit reproducible runs from a single `u64`
//! seed, including across Rust/crate upgrades. We therefore implement the
//! generator ourselves rather than depending on an external crate's stream
//! stability: [`SimRng`] is xoshiro256\*\* (Blackman & Vigna), seeded through
//! splitmix64 exactly as the reference implementation recommends.
//!
//! Independent sub-streams (one per traffic source, one per model that needs
//! noise) are carved out with [`SimRng::fork`], so adding a consumer of
//! randomness in one component never perturbs the stream seen by another.

/// The splitmix64 generator; used for seeding and stream splitting.
#[derive(Debug, Clone)]
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Deterministic PRNG for simulations: xoshiro256\*\* with convenience
/// sampling methods.
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
    /// Cached second output of the Box–Muller transform.
    gauss_spare: Option<f64>,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed (expanded via splitmix64).
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next_u64();
        }
        // xoshiro256** must not start from the all-zero state; splitmix64
        // cannot produce four consecutive zeros, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        SimRng {
            s,
            gauss_spare: None,
        }
    }

    /// Creates a generator directly from the full 256-bit state.
    /// Used by tests against the reference vectors.
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(s != [0, 0, 0, 0], "xoshiro256** state must be non-zero");
        SimRng {
            s,
            gauss_spare: None,
        }
    }

    /// Derives an independent child generator. The child's stream is
    /// determined by the parent's current position, so forking is itself
    /// deterministic.
    pub fn fork(&mut self) -> SimRng {
        SimRng::new(self.next_u64() ^ 0xA5A5_A5A5_5A5A_5A5A)
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` using rejection sampling (unbiased).
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        // Rejection zone to remove modulo bias.
        let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % bound;
            }
        }
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + self.below(hi - lo)
    }

    /// Uniform `usize` in `[0, bound)`.
    pub fn below_usize(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    pub fn bool(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Standard normal sample (Box–Muller, with caching of the paired
    /// output).
    pub fn gaussian(&mut self) -> f64 {
        if let Some(z) = self.gauss_spare.take() {
            return z;
        }
        // Avoid ln(0).
        let u1 = loop {
            let u = self.f64();
            if u > 0.0 {
                break u;
            }
        };
        let u2 = self.f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.gauss_spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Exponential sample with the given mean (inverse-CDF method).
    ///
    /// # Panics
    /// Panics if `mean` is not finite and positive.
    pub fn exp(&mut self, mean: f64) -> f64 {
        assert!(
            mean.is_finite() && mean > 0.0,
            "exp() needs a positive mean"
        );
        let u = loop {
            let u = self.f64();
            if u > 0.0 {
                break u;
            }
        };
        -mean * u.ln()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below_usize(i + 1);
            items.swap(i, j);
        }
    }

    /// Uniformly chosen reference into a slice; `None` for an empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.below_usize(items.len())])
        }
    }

    /// A random permutation of `0..n`.
    pub fn permutation_indices(&mut self, n: usize) -> Vec<usize> {
        let mut v: Vec<usize> = (0..n).collect();
        self.shuffle(&mut v);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// First two outputs of the reference xoshiro256** implementation for
    /// state {1, 2, 3, 4}, computed by hand from the published algorithm:
    /// rotl(2*5, 7)*9 = 11520, then s1 becomes 0 so the next output is 0.
    #[test]
    fn matches_reference_vectors() {
        let mut rng = SimRng::from_state([1, 2, 3, 4]);
        assert_eq!(rng.next_u64(), 11520);
        assert_eq!(rng.next_u64(), 0);
        // Regression pin for the following outputs (self-consistency across
        // refactors; values captured from this implementation).
        let tail: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        let mut rng2 = SimRng::from_state([1, 2, 3, 4]);
        rng2.next_u64();
        rng2.next_u64();
        let tail2: Vec<u64> = (0..4).map(|_| rng2.next_u64()).collect();
        assert_eq!(tail, tail2);
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 3, "streams should be effectively independent");
    }

    #[test]
    fn forked_streams_are_independent_and_deterministic() {
        let mut parent1 = SimRng::new(7);
        let mut parent2 = SimRng::new(7);
        let mut c1 = parent1.fork();
        let mut c2 = parent2.fork();
        for _ in 0..100 {
            assert_eq!(c1.next_u64(), c2.next_u64());
        }
        // Forking must not replay the parent stream.
        let mut fresh = SimRng::new(7);
        let mut child = SimRng::new(7).fork();
        let overlap = (0..100)
            .filter(|_| fresh.next_u64() == child.next_u64())
            .count();
        assert!(overlap < 3);
    }

    #[test]
    fn f64_is_in_unit_interval_and_centered() {
        let mut rng = SimRng::new(3);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }

    #[test]
    fn below_respects_bound_and_is_roughly_uniform() {
        let mut rng = SimRng::new(9);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[rng.below(10) as usize] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c} skewed");
        }
    }

    #[test]
    fn range_endpoints() {
        let mut rng = SimRng::new(5);
        for _ in 0..1000 {
            let v = rng.range_u64(10, 12);
            assert!(v == 10 || v == 11);
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        SimRng::new(0).range_u64(5, 5);
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = SimRng::new(11);
        let n = 200_000;
        let (mut sum, mut sum2) = (0.0, 0.0);
        for _ in 0..n {
            let z = rng.gaussian();
            sum += z;
            sum2 += z * z;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "gaussian mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "gaussian var {var}");
    }

    #[test]
    fn exp_mean() {
        let mut rng = SimRng::new(13);
        let n = 200_000;
        let mean_target = 250.0;
        let sum: f64 = (0..n).map(|_| rng.exp(mean_target)).sum();
        let mean = sum / n as f64;
        assert!(
            (mean - mean_target).abs() / mean_target < 0.02,
            "exp mean {mean}"
        );
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::new(17);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_empty_is_none() {
        let mut rng = SimRng::new(19);
        let empty: [u8; 0] = [];
        assert!(rng.choose(&empty).is_none());
        assert_eq!(rng.choose(&[42]), Some(&42));
    }

    #[test]
    fn bool_probability() {
        let mut rng = SimRng::new(23);
        let hits = (0..100_000).filter(|_| rng.bool(0.3)).count();
        assert!((28_000..32_000).contains(&hits), "p=0.3 hits {hits}");
    }

    #[test]
    fn permutation_indices_complete() {
        let mut rng = SimRng::new(29);
        let p = rng.permutation_indices(16);
        let mut seen = [false; 16];
        for &i in &p {
            assert!(!seen[i]);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }
}
