//! Simulated time: absolute instants and durations with nanosecond
//! resolution.
//!
//! The reproduced paper contrasts schedulers operating at *nanosecond*
//! (hardware) and *millisecond* (software) timescales; a `u64` nanosecond
//! clock covers both with headroom (≈ 584 years), and integer arithmetic
//! keeps every run bit-for-bit reproducible.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant on the simulation clock, in nanoseconds since the
/// start of the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates an instant from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates an instant from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Creates an instant from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Raw nanoseconds since the start of the run.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The instant expressed in seconds as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time elapsed since `earlier`, saturating to zero if `earlier` is in
    /// the future (useful with skewed clocks).
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked difference; `None` if `earlier > self`.
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }

    /// Checked addition of a duration.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// nanosecond. Panics on negative or non-finite input.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(
            s.is_finite() && s >= 0.0,
            "duration must be finite and non-negative"
        );
        SimDuration((s * 1e9).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The duration expressed in seconds as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True for the zero-length duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Checked addition.
    pub fn checked_add(self, other: SimDuration) -> Option<SimDuration> {
        self.0.checked_add(other.0).map(SimDuration)
    }

    /// Multiplies by a float factor, rounding to the nearest nanosecond.
    /// Panics on negative or non-finite factors.
    pub fn mul_f64(self, k: f64) -> SimDuration {
        assert!(
            k.is_finite() && k >= 0.0,
            "factor must be finite and non-negative"
        );
        SimDuration((self.0 as f64 * k).round() as u64)
    }

    /// The larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(d.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        *self = *self + d;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0.checked_sub(d.0).expect("SimTime underflow"))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("negative SimDuration: subtrahend is later"),
        )
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(other.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, other: SimDuration) {
        *self = *self + other;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(other.0).expect("SimDuration underflow"))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, other: SimDuration) {
        *self = *self - other;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(k).expect("SimDuration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, k: u64) -> SimDuration {
        SimDuration(self.0 / k)
    }
}

impl Div<SimDuration> for SimDuration {
    type Output = u64;
    /// How many whole `other` spans fit in `self`.
    fn div(self, other: SimDuration) -> u64 {
        self.0 / other.0
    }
}

/// Human-oriented rendering: picks the largest unit that keeps the value
/// readable (`730ns`, `1.500us`, `12.000ms`, `2.000s`).
fn fmt_ns(ns: u64, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    if ns < 1_000 {
        write!(f, "{ns}ns")
    } else if ns < 1_000_000 {
        write!(f, "{:.3}us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        write!(f, "{:.3}ms", ns as f64 / 1e6)
    } else {
        write!(f, "{:.3}s", ns as f64 / 1e9)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_ns(self.0, f)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_ns(self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_scale_correctly() {
        assert_eq!(SimTime::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(SimTime::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimTime::from_micros(7).as_nanos(), 7_000);
        assert_eq!(SimDuration::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimDuration::from_millis(2).as_nanos(), 2_000_000);
        assert_eq!(SimDuration::from_micros(2).as_nanos(), 2_000);
    }

    #[test]
    fn arithmetic_roundtrips() {
        let t = SimTime::from_micros(10);
        let d = SimDuration::from_nanos(123);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
        let mut t2 = t;
        t2 += d;
        assert_eq!(t2, t + d);
    }

    #[test]
    #[should_panic(expected = "negative SimDuration")]
    fn negative_difference_panics() {
        let _ = SimTime::from_nanos(1) - SimTime::from_nanos(2);
    }

    #[test]
    fn saturating_since_clamps() {
        let a = SimTime::from_nanos(5);
        let b = SimTime::from_nanos(9);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_since(a), SimDuration::from_nanos(4));
        assert_eq!(a.checked_since(b), None);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_micros(10);
        assert_eq!(d * 3, SimDuration::from_micros(30));
        assert_eq!(d / 4, SimDuration::from_nanos(2_500));
        assert_eq!(d / SimDuration::from_micros(3), 3);
        assert_eq!(d.mul_f64(0.5), SimDuration::from_micros(5));
    }

    #[test]
    fn from_secs_f64_rounds() {
        assert_eq!(SimDuration::from_secs_f64(1.5e-9).as_nanos(), 2);
        assert_eq!(SimDuration::from_secs_f64(0.001).as_nanos(), 1_000_000);
    }

    #[test]
    fn display_picks_units() {
        assert_eq!(SimDuration::from_nanos(730).to_string(), "730ns");
        assert_eq!(SimDuration::from_nanos(1_500).to_string(), "1.500us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimTime::from_secs(2).to_string(), "2.000s");
    }

    #[test]
    fn min_max() {
        let a = SimTime::from_nanos(1);
        let b = SimTime::from_nanos(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        let x = SimDuration::from_nanos(1);
        let y = SimDuration::from_nanos(2);
        assert_eq!(x.max(y), y);
        assert_eq!(x.min(y), x);
    }
}
