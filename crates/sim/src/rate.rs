//! Bit-rate arithmetic: serialization delays, byte budgets, token buckets.
//!
//! All conversions use 128-bit intermediate integer math so that a 100 Gb/s
//! link and a multi-second window never overflow and every result is exact
//! (rounded up for transmission times — a partial nanosecond still occupies
//! the wire).

use crate::time::{SimDuration, SimTime};

/// A link or port speed in bits per second.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BitRate(u64);

impl BitRate {
    /// 1 Gb/s.
    pub const GBPS_1: BitRate = BitRate::from_gbps(1);
    /// 10 Gb/s — the per-port rate in the paper's 64×64 example.
    pub const GBPS_10: BitRate = BitRate::from_gbps(10);
    /// 40 Gb/s.
    pub const GBPS_40: BitRate = BitRate::from_gbps(40);
    /// 100 Gb/s — the NetFPGA-SUME aggregate the paper targets.
    pub const GBPS_100: BitRate = BitRate::from_gbps(100);

    /// Constructs from bits per second.
    ///
    /// Zero rates are rejected: a zero-speed link cannot transmit and every
    /// use of it would need a special case.
    pub const fn from_bps(bps: u64) -> BitRate {
        assert!(bps > 0, "bit rate must be positive");
        BitRate(bps)
    }

    /// Constructs from megabits per second.
    pub const fn from_mbps(mbps: u64) -> BitRate {
        BitRate::from_bps(mbps * 1_000_000)
    }

    /// Constructs from gigabits per second.
    pub const fn from_gbps(gbps: u64) -> BitRate {
        BitRate::from_bps(gbps * 1_000_000_000)
    }

    /// Raw bits per second.
    pub const fn bps(self) -> u64 {
        self.0
    }

    /// Bytes per second (rounded down).
    pub const fn bytes_per_sec(self) -> u64 {
        self.0 / 8
    }

    /// Time to serialize `bytes` onto the wire, rounded up to the next
    /// nanosecond.
    pub fn tx_time(self, bytes: u64) -> SimDuration {
        // Fast path: for packet-scale sizes the numerator fits u64, and
        // hardware 64-bit division beats the software u128 routine —
        // this runs two to three times per simulated packet.
        if bytes <= u64::MAX / 8_000_000_000 {
            let ns = (bytes * 8_000_000_000).div_ceil(self.0);
            return SimDuration::from_nanos(ns);
        }
        let bits = bytes as u128 * 8;
        let ns = (bits * 1_000_000_000).div_ceil(self.0 as u128);
        SimDuration::from_nanos(ns as u64)
    }

    /// A one-entry [`tx_time`](Self::tx_time) memo for this rate. Packet
    /// streams overwhelmingly repeat one wire size (the MTU), so hot
    /// paths that serialize per packet hit the memo instead of dividing.
    pub fn tx_cache(self) -> TxTimeCache {
        TxTimeCache {
            rate: self,
            bytes: u64::MAX,
            tx: SimDuration::ZERO,
        }
    }

    /// Bytes that can be fully transmitted within `window` (rounded down).
    pub fn bytes_in(self, window: SimDuration) -> u64 {
        let bits = self.0 as u128 * window.as_nanos() as u128 / 1_000_000_000;
        (bits / 8) as u64
    }

    /// Scales the rate by a factor (e.g. EPS at 1/10 of line rate). Rounds
    /// down but never below 1 bps.
    pub fn scale(self, k: f64) -> BitRate {
        assert!(k.is_finite() && k > 0.0, "rate scale factor must be > 0");
        BitRate(((self.0 as f64 * k) as u64).max(1))
    }
}

/// A one-entry [`BitRate::tx_time`] memo (see [`BitRate::tx_cache`]):
/// returns exactly what `tx_time` returns, skipping the division while
/// consecutive lookups repeat the same byte count.
#[derive(Debug, Clone, Copy)]
pub struct TxTimeCache {
    rate: BitRate,
    bytes: u64,
    tx: SimDuration,
}

impl TxTimeCache {
    /// Serialization time of `bytes` at the cached rate.
    #[inline]
    pub fn tx_time(&mut self, bytes: u64) -> SimDuration {
        if bytes != self.bytes {
            self.bytes = bytes;
            self.tx = self.rate.tx_time(bytes);
        }
        self.tx
    }

    /// The rate this cache serializes at.
    pub fn rate(&self) -> BitRate {
        self.rate
    }
}

impl core::fmt::Display for BitRate {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let bps = self.0;
        if bps >= 1_000_000_000 && bps.is_multiple_of(1_000_000_000) {
            write!(f, "{}Gbps", bps / 1_000_000_000)
        } else if bps >= 1_000_000 {
            write!(f, "{:.1}Mbps", bps as f64 / 1e6)
        } else {
            write!(f, "{bps}bps")
        }
    }
}

/// A token bucket for rate limiting / pacing.
///
/// Tokens are denominated in bytes and refill continuously at `rate`.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    rate: BitRate,
    burst_bytes: u64,
    tokens: f64,
    last_refill: SimTime,
}

impl TokenBucket {
    /// Creates a bucket that starts full.
    pub fn new(rate: BitRate, burst_bytes: u64) -> Self {
        TokenBucket {
            rate,
            burst_bytes,
            tokens: burst_bytes as f64,
            last_refill: SimTime::ZERO,
        }
    }

    fn refill(&mut self, now: SimTime) {
        let dt = now.saturating_since(self.last_refill);
        if !dt.is_zero() {
            let add = self.rate.bytes_per_sec() as f64 * dt.as_secs_f64();
            self.tokens = (self.tokens + add).min(self.burst_bytes as f64);
            self.last_refill = now;
        }
    }

    /// Attempts to consume `bytes` worth of tokens at `now`.
    pub fn try_consume(&mut self, now: SimTime, bytes: u64) -> bool {
        self.refill(now);
        if self.tokens >= bytes as f64 {
            self.tokens -= bytes as f64;
            true
        } else {
            false
        }
    }

    /// The earliest instant at which `bytes` tokens will be available,
    /// assuming no other consumption in between.
    pub fn earliest(&mut self, now: SimTime, bytes: u64) -> SimTime {
        self.refill(now);
        if self.tokens >= bytes as f64 {
            return now;
        }
        let deficit = bytes as f64 - self.tokens;
        let secs = deficit / self.rate.bytes_per_sec() as f64;
        now + SimDuration::from_secs_f64(secs)
    }

    /// Current token level in bytes (after refilling to `now`).
    pub fn level(&mut self, now: SimTime) -> u64 {
        self.refill(now);
        self.tokens as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tx_time_known_values() {
        // 1500 B at 10 Gb/s = 1200 ns exactly.
        assert_eq!(
            BitRate::GBPS_10.tx_time(1500),
            SimDuration::from_nanos(1200)
        );
        // 64 B at 10 Gb/s = 51.2 ns, rounded up to 52.
        assert_eq!(BitRate::GBPS_10.tx_time(64), SimDuration::from_nanos(52));
        // 1 B at 1 Gb/s = 8 ns.
        assert_eq!(BitRate::GBPS_1.tx_time(1), SimDuration::from_nanos(8));
    }

    #[test]
    fn bytes_in_inverts_tx_time() {
        let r = BitRate::GBPS_10;
        let window = SimDuration::from_micros(1);
        // 10 Gb/s for 1 µs = 10_000 bits = 1250 bytes.
        assert_eq!(r.bytes_in(window), 1250);
        // Round-trip: transmitting those bytes takes exactly the window.
        assert_eq!(r.tx_time(1250), window);
    }

    #[test]
    fn rate_display() {
        assert_eq!(BitRate::GBPS_10.to_string(), "10Gbps");
        assert_eq!(BitRate::from_mbps(250).to_string(), "250.0Mbps");
        assert_eq!(BitRate::from_bps(999).to_string(), "999bps");
    }

    #[test]
    fn scale_rounds_and_stays_positive() {
        assert_eq!(BitRate::GBPS_10.scale(0.1), BitRate::GBPS_1);
        assert!(BitRate::from_bps(1).scale(0.001).bps() >= 1);
    }

    #[test]
    #[should_panic(expected = "bit rate must be positive")]
    fn zero_rate_rejected() {
        BitRate::from_bps(0);
    }

    #[test]
    fn token_bucket_starts_full_and_drains() {
        let mut tb = TokenBucket::new(BitRate::GBPS_1, 3000);
        let t0 = SimTime::ZERO;
        assert!(tb.try_consume(t0, 1500));
        assert!(tb.try_consume(t0, 1500));
        assert!(!tb.try_consume(t0, 1));
    }

    #[test]
    fn token_bucket_refills_at_rate() {
        let mut tb = TokenBucket::new(BitRate::GBPS_1, 1500);
        let t0 = SimTime::ZERO;
        assert!(tb.try_consume(t0, 1500));
        // 1 Gb/s = 125 MB/s → 1500 B refill in 12 µs.
        let t1 = t0 + SimDuration::from_micros(12);
        assert!(tb.try_consume(t1, 1500));
        assert!(!tb.try_consume(t1, 1500));
    }

    #[test]
    fn token_bucket_earliest_prediction() {
        let mut tb = TokenBucket::new(BitRate::GBPS_1, 1500);
        let t0 = SimTime::ZERO;
        assert_eq!(tb.earliest(t0, 1000), t0);
        assert!(tb.try_consume(t0, 1500));
        let eta = tb.earliest(t0, 1500);
        // ≈ 12 µs (float rounding tolerated: ±1 ns).
        let expect = SimDuration::from_micros(12).as_nanos();
        let got = eta.saturating_since(t0).as_nanos();
        assert!(got.abs_diff(expect) <= 1, "eta {got} vs {expect}");
        assert!(tb.try_consume(eta + SimDuration::from_nanos(1), 1500));
    }

    #[test]
    fn token_bucket_caps_at_burst() {
        let mut tb = TokenBucket::new(BitRate::GBPS_10, 1000);
        let later = SimTime::from_secs(10);
        assert_eq!(tb.level(later), 1000);
        assert!(!tb.try_consume(later, 1001));
    }
}
