//! Stable-order event queue and simulation driver.
//!
//! The queue is generic over the event payload: domain crates define an
//! event `enum` and a handler that matches on it, keeping all mutable state
//! in one place (the handler's `&mut S`). Events scheduled for the same
//! instant are delivered in insertion order, which makes every run
//! deterministic given a fixed seed.
//!
//! # Implementation: a ladder queue
//!
//! The queue is a [ladder queue](https://doi.org/10.1145/1103323.1103324)
//! rather than a binary heap: events are spread into time buckets on
//! insert (O(1)) and each bucket is sorted lazily, only when the pop
//! frontier reaches it. For the simulator's event mix — millions of
//! packet events ~1 µs ahead of `now`, plus a thin tail of epoch/app
//! timers ms ahead — this replaces the heap's ~log n pointer-chasing
//! sift per event with an append plus an amortized short sort of one
//! cache-resident bucket.
//!
//! Ordering is **exactly** the heap's: every event carries a monotone
//! sequence number, buckets are sorted by the full `(time, seq)` key, and
//! pops always come from the sorted `bottom` run. The FIFO tie-break at
//! equal timestamps is therefore an explicit invariant of the data
//! structure (pinned by `ties_break_by_insertion_order` and the
//! differential property test in `tests/proptest_kernel.rs`), not an
//! accident of heap sift order — swapping the backing store cannot
//! reorder equal-time events.
//!
//! Structure, nearest first:
//!
//! * `bottom` — the imminent events, a ring buffer sorted *descending*
//!   by `(time, seq)` and popped from the back (a pop is O(1), an
//!   insert shifts whichever side of the ring is shorter — so both a
//!   near-`now` event and a same-instant append are cheap);
//! * `rungs` — a stack of bucket arrays. Rung 0 spans every event known
//!   when it was built; each deeper rung subdivides one overfull bucket
//!   of its parent, so dense clusters are spread recursively instead of
//!   sorted as one huge batch;
//! * `overflow` — events beyond rung 0's span, untouched until the rung
//!   drains, then re-spread into a fresh rung 0.

use std::collections::VecDeque;

use crate::time::{SimDuration, SimTime};

/// An event payload scheduled for a specific instant.
struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> Scheduled<E> {
    /// The total order of delivery: time first, insertion order at ties.
    #[inline]
    fn key(&self) -> (SimTime, u64) {
        (self.time, self.seq)
    }
}

/// Most buckets rung 0 may use (it is rebuilt from `overflow` and spans
/// all pending times; the actual count scales with the population so a
/// sparse queue does not pay empty-bucket scans).
const BASE_BUCKETS: usize = 1024;
/// Buckets in a spread rung (subdivides one parent bucket).
const SUB_BUCKETS: usize = 64;
/// A bucket reaching the pop frontier with more events than this (and a
/// width above one nanosecond) is spread into a deeper rung instead of
/// sorted directly.
const SPREAD_THRESHOLD: usize = 96;
/// An exhausted ladder whose overflow is at most this many events skips
/// bucketing and sorts the overflow straight into `bottom`: for sparse
/// queues (slow-mode runs idle between grant bursts) the ladder
/// degenerates into one small sorted run instead of paying rung
/// bookkeeping per event. Safe only because of the spill valve below.
const DIRECT_SORT: usize = 96;
/// When merge-inserts grow `bottom` beyond this, its far half is spilled
/// into a fresh deepest rung and `bottom_limit` lowered. This is the
/// valve that keeps the sorted run small when a dense burst arrives
/// while `bottom_limit` sits far in the future (after a sparse direct
/// sort or a coarse bucket) — without it each insert would shift an
/// ever-growing tail, degenerating into an O(n²) insertion list.
const SPILL_THRESHOLD: usize = 256;

/// One level of the ladder: `buckets[i]` holds events with
/// `start + i·width <= t < start + (i+1)·width`, unsorted.
struct Rung<E> {
    start: u64,
    width: u64,
    /// Exclusive end of this rung's coverage (saturating).
    end: u64,
    /// First bucket the pop frontier has not passed yet.
    cur: usize,
    /// Buckets in use this activation (`buckets.len()` may be larger —
    /// rungs are pooled and keep their allocations).
    nbuckets: usize,
    buckets: Vec<Vec<Scheduled<E>>>,
}

impl<E> Rung<E> {
    fn new() -> Self {
        Rung {
            start: 0,
            width: 1,
            end: 0,
            cur: 0,
            nbuckets: 0,
            buckets: Vec::new(),
        }
    }

    /// Re-arms the rung to cover `[start, start + nbuckets·width)`,
    /// clamped to `end_cap`. The clamp matters for spread rungs: their
    /// bucket grid may overhang the parent bucket's range by up to one
    /// sub-bucket, and an unclamped `end` would steal later-scheduled
    /// events that belong to the parent's *next* (undrained) bucket —
    /// delivering them ahead of earlier times already waiting there.
    fn arm(&mut self, start: u64, width: u64, nbuckets: usize, end_cap: u64) {
        debug_assert!(width >= 1);
        self.start = start;
        self.width = width;
        self.end = start
            .saturating_add(width.saturating_mul(nbuckets as u64))
            .min(end_cap);
        self.cur = 0;
        self.nbuckets = nbuckets;
        if self.buckets.len() < nbuckets {
            self.buckets.resize_with(nbuckets, Vec::new);
        }
    }

    #[inline]
    fn bucket_of(&self, t: u64) -> usize {
        // `t < self.end` is deliberately not asserted: when the grid
        // span saturates (events near `u64::MAX`), `end` clamps to the
        // maximum while the ceil-sized width still maps every
        // distributed timestamp into a valid bucket — the index bound
        // below is the real invariant.
        debug_assert!(t >= self.start);
        let idx = ((t - self.start) / self.width) as usize;
        debug_assert!(idx < self.nbuckets, "ladder bucket index out of range");
        idx
    }
}

/// A future-event list with a monotonically advancing clock.
///
/// Invariants:
/// * [`EventQueue::pop`] never returns events out of `(time, seq)` order;
/// * the clock (`now`) never moves backwards;
/// * scheduling an event strictly in the past is a logic error and panics;
/// * whenever the queue is non-empty, `bottom` is non-empty and its last
///   element is the global minimum `(time, seq)`.
pub struct EventQueue<E> {
    /// Imminent events, sorted descending by `(time, seq)`; popped from
    /// the back. Covers times strictly below `bottom_limit`. A ring
    /// buffer so merge-inserts shift the shorter side: a same-instant
    /// flood keeps appending at the front for O(1) each, where a `Vec`
    /// would memmove the whole equal-time group per insert.
    bottom: VecDeque<Scheduled<E>>,
    /// Exclusive upper bound of the range `bottom` is responsible for:
    /// a newly scheduled event below it must be merge-inserted here.
    bottom_limit: u64,
    /// The rung stack; `rungs[..depth]` are active, deepest last. Spare
    /// rungs keep their bucket allocations for reuse.
    rungs: Vec<Rung<E>>,
    depth: usize,
    /// Events at or beyond rung 0's coverage, unsorted.
    overflow: Vec<Scheduled<E>>,
    len: usize,
    seq: u64,
    now: SimTime,
    scheduled_total: u64,
    /// Structural-path counters (see the accessors below): cheap enough
    /// to maintain unconditionally, deterministic for a fixed event
    /// sequence, and the only visibility into which ladder paths a
    /// workload actually exercises.
    spreads: u64,
    spills: u64,
    direct_sorts: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at t = 0.
    pub fn new() -> Self {
        EventQueue {
            bottom: VecDeque::new(),
            bottom_limit: 0,
            rungs: Vec::new(),
            depth: 0,
            overflow: Vec::new(),
            len: 0,
            seq: 0,
            now: SimTime::ZERO,
            scheduled_total: 0,
            spreads: 0,
            spills: 0,
            direct_sorts: 0,
        }
    }

    /// The current simulated time: the timestamp of the last popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `payload` for the absolute instant `at`.
    ///
    /// # Panics
    /// Panics if `at` is earlier than the current clock: an event in the
    /// past indicates a bug in the caller's timing logic, and silently
    /// reordering it would corrupt the run.
    pub fn schedule_at(&mut self, at: SimTime, payload: E) {
        assert!(
            at >= self.now,
            "event scheduled in the past: at={at} now={}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.scheduled_total += 1;
        self.len += 1;
        let ev = Scheduled {
            time: at,
            seq,
            payload,
        };
        let t = at.as_nanos();
        if self.len == 1 {
            // Empty queue: the event becomes the whole bottom run. The
            // ladder is guaranteed idle here (it is reset when the queue
            // drains), so widening `bottom_limit` cannot strand an event
            // in a passed bucket.
            debug_assert!(self.depth == 0 && self.overflow.is_empty());
            self.bottom.push_back(ev);
            self.bottom_limit = t.saturating_add(1);
            return;
        }
        if t < self.bottom_limit {
            // The pop frontier already owns this range: merge-insert.
            // Descending order means the shifted tail is exactly the
            // events delivered *before* this one — for the common
            // "schedule at `now`" case that is just the same-instant
            // events already pending, typically a handful.
            let key = (at, seq);
            let pos = self.bottom.partition_point(|e| e.key() > key);
            self.bottom.insert(pos, ev);
            if self.bottom.len() > SPILL_THRESHOLD {
                self.spill_bottom();
            }
            return;
        }
        // Deepest rung first: deeper rungs cover earlier sub-ranges, so
        // the first rung whose span contains `t` is the right home.
        for d in (0..self.depth).rev() {
            if t < self.rungs[d].end {
                let idx = self.rungs[d].bucket_of(t);
                self.rungs[d].buckets[idx].push(ev);
                return;
            }
        }
        self.overflow.push(ev);
    }

    /// Schedules `payload` for `delay` after the current clock.
    pub fn schedule_after(&mut self, delay: SimDuration, payload: E) {
        self.schedule_at(self.now + delay, payload);
    }

    /// Removes and returns the earliest event, advancing the clock to its
    /// timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let ev = self.bottom.pop_back()?;
        debug_assert!(ev.time >= self.now, "event queue clock went backwards");
        self.now = ev.time;
        self.len -= 1;
        if self.bottom.is_empty() {
            if self.len == 0 {
                self.reset_structure();
            } else {
                self.replenish();
            }
        }
        Some((ev.time, ev.payload))
    }

    /// The timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.bottom.back().map(|s| s.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total number of events ever scheduled on this queue.
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Dense buckets spread into deeper rungs (the recursive-subdivision
    /// path in `replenish`). A workload that never spreads fits each
    /// frontier bucket in one short sort.
    pub fn spread_count(&self) -> u64 {
        self.spreads
    }

    /// Oversized bottom runs spilled back into a fresh deepest rung (the
    /// valve that guards against O(n²) merge-inserts under a far
    /// `bottom_limit`).
    pub fn spill_count(&self) -> u64 {
        self.spills
    }

    /// Sparse replenishes that sorted the overflow straight into `bottom`
    /// without building a rung (the slow-mode idle path).
    pub fn direct_sort_count(&self) -> u64 {
        self.direct_sorts
    }

    /// Drops all pending events without advancing the clock.
    pub fn clear(&mut self) {
        self.bottom.clear();
        for r in &mut self.rungs[..self.depth] {
            for b in &mut r.buckets {
                b.clear();
            }
        }
        self.overflow.clear();
        self.len = 0;
        self.reset_structure();
    }

    /// Puts the ladder into its canonical empty state (no active rungs,
    /// `bottom_limit` at zero) so stale coverage can never swallow a new
    /// event into an already-passed bucket.
    fn reset_structure(&mut self) {
        debug_assert!(self.bottom.is_empty() && self.overflow.is_empty());
        self.depth = 0;
        self.bottom_limit = 0;
    }

    /// Restores the "`bottom` non-empty" invariant: walks the deepest
    /// rung to the next non-empty bucket, spreading overfull buckets
    /// into deeper rungs, rebuilding rung 0 from `overflow` when the
    /// ladder is exhausted. Caller guarantees `len > 0`.
    fn replenish(&mut self) {
        debug_assert!(self.bottom.is_empty() && self.len > 0);
        loop {
            if self.depth == 0 {
                debug_assert!(!self.overflow.is_empty(), "events lost by the ladder");
                if self.overflow.len() <= DIRECT_SORT {
                    // Sparse population: one sorted run, no rung. A later
                    // dense burst under the raised `bottom_limit` is
                    // handled by the spill valve.
                    self.direct_sorts += 1;
                    let mut batch = std::mem::take(&mut self.overflow);
                    batch.sort_unstable_by_key(|e| std::cmp::Reverse(e.key()));
                    self.bottom_limit = batch[0].time.as_nanos().saturating_add(1);
                    self.bottom = VecDeque::from(batch);
                    return;
                }
                self.rebuild_base_rung();
            }
            let r = &mut self.rungs[self.depth - 1];
            let mut cur = r.cur;
            while cur < r.nbuckets && r.buckets[cur].is_empty() {
                cur += 1;
            }
            if cur == r.nbuckets {
                // This rung is drained; resume its parent (or, at depth
                // 0, fall through to an overflow rebuild next loop).
                self.bottom_limit = r.end;
                self.depth -= 1;
                continue;
            }
            r.cur = cur + 1;
            let bucket_start = r.start.saturating_add(r.width.saturating_mul(cur as u64));
            // The last bucket's grid cell may overhang the rung's clamped
            // coverage; the bucket only *owns* times below `r.end`, and
            // claiming more (via `bottom_limit` or a spread rung's span)
            // would pull later-scheduled events ahead of equal-or-earlier
            // ones waiting in the parent's next bucket.
            let bucket_end = r
                .start
                .saturating_add(r.width.saturating_mul(cur as u64 + 1))
                .min(r.end);
            if r.buckets[cur].len() > SPREAD_THRESHOLD && r.width > 1 {
                // Dense bucket: spread it one level finer instead of
                // sorting a big batch.
                let events = std::mem::take(&mut r.buckets[cur]);
                let width = (r.width - 1) / SUB_BUCKETS as u64 + 1;
                let nbuckets = ((r.width - 1) / width + 1) as usize;
                self.spreads += 1;
                self.push_rung(bucket_start, width, nbuckets, bucket_end);
                let rung = &mut self.rungs[self.depth - 1];
                for ev in events {
                    let idx = rung.bucket_of(ev.time.as_nanos());
                    rung.buckets[idx].push(ev);
                }
                continue;
            }
            // Normal case: this bucket becomes the new bottom run (both
            // conversions are O(1) and move no elements; the old
            // bottom's allocation is recycled as the bucket's future
            // backing store).
            let mut batch = std::mem::take(&mut r.buckets[cur]);
            r.buckets[cur] = Vec::from(std::mem::take(&mut self.bottom));
            batch.sort_unstable_by_key(|e| std::cmp::Reverse(e.key()));
            self.bottom = VecDeque::from(batch);
            self.bottom_limit = bucket_end;
            return;
        }
    }

    /// Moves the far (front) half of an oversized `bottom` into a fresh
    /// deepest rung covering `[split, bottom_limit)` and lowers
    /// `bottom_limit` to the split. Legal because a deeper rung always
    /// covers times *below* every shallower rung's undrained frontier —
    /// exactly where these events sit — so pop order is preserved; the
    /// split is taken at a strict time boundary so equal-time FIFO runs
    /// are never torn apart.
    fn spill_bottom(&mut self) {
        // `bottom` is descending: the front half holds the latest times.
        let mid_time = self.bottom[self.bottom.len() / 2].time;
        let cut = self.bottom.partition_point(|e| e.time > mid_time);
        if cut == 0 {
            // Everything from the front shares one timestamp: no legal
            // split point. Letting the run grow is fine — a same-instant
            // flood appends at the ring's front for O(1) each.
            return;
        }
        let start = mid_time.as_nanos().saturating_add(1);
        let end = self.bottom_limit;
        debug_assert!(start < end, "spill range must be non-empty");
        let span = end - start;
        let width = (span - 1) / SUB_BUCKETS as u64 + 1;
        let nbuckets = ((span - 1) / width + 1) as usize;
        self.spills += 1;
        self.push_rung(start, width, nbuckets, end);
        let rung = self.depth - 1;
        for ev in self.bottom.drain(..cut) {
            let idx = self.rungs[rung].bucket_of(ev.time.as_nanos());
            self.rungs[rung].buckets[idx].push(ev);
        }
        self.bottom_limit = start;
    }

    /// Activates a (possibly recycled) rung covering
    /// `[start, start + nbuckets·width)` (clamped to `end_cap`) as the
    /// new deepest level.
    fn push_rung(&mut self, start: u64, width: u64, nbuckets: usize, end_cap: u64) {
        if self.depth == self.rungs.len() {
            self.rungs.push(Rung::new());
        }
        self.rungs[self.depth].arm(start, width, nbuckets, end_cap);
        self.depth += 1;
    }

    /// Re-spreads the whole overflow into a fresh rung 0 sized to its
    /// actual time span, so bucket width adapts to the pending-event
    /// distribution each rebuild.
    fn rebuild_base_rung(&mut self) {
        debug_assert!(self.depth == 0 && !self.overflow.is_empty());
        let mut min = u64::MAX;
        let mut max = 0u64;
        for e in &self.overflow {
            let t = e.time.as_nanos();
            min = min.min(t);
            max = max.max(t);
        }
        // Bucket count tracks the population (~1 event per bucket up to
        // the cap) so the drain scan never visits far more buckets than
        // there are events.
        let nbuckets = self.overflow.len().next_power_of_two().min(BASE_BUCKETS);
        let width = (max - min) / nbuckets as u64 + 1;
        self.push_rung(min, width, nbuckets, u64::MAX);
        let rung = &mut self.rungs[0];
        for ev in self.overflow.drain(..) {
            let idx = rung.bucket_of(ev.time.as_nanos());
            rung.buckets[idx].push(ev);
        }
    }
}

/// Statistics returned by a completed [`Simulation`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunStats {
    /// Events delivered to the handler.
    pub events_processed: u64,
    /// Clock value when the run stopped.
    pub end_time: SimTime,
    /// True if the run stopped because the event horizon was reached (rather
    /// than the queue draining or the event budget being exhausted).
    pub hit_horizon: bool,
}

/// A thin driver that repeatedly pops events and hands them to a handler
/// together with mutable access to the queue (so handlers can schedule
/// follow-up events) and to the caller's state.
pub struct Simulation<E> {
    /// The underlying event queue. Exposed so that setup code can seed
    /// initial events before calling [`Simulation::run_until`].
    pub queue: EventQueue<E>,
    /// Safety valve: the run aborts after this many events. Defaults to
    /// `u64::MAX` (disabled).
    pub max_events: u64,
}

impl<E> Default for Simulation<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Simulation<E> {
    /// Creates a driver with an empty queue and no event budget.
    pub fn new() -> Self {
        Simulation {
            queue: EventQueue::new(),
            max_events: u64::MAX,
        }
    }

    /// Runs until the queue drains, the clock passes `horizon`, or the event
    /// budget is exhausted. Events timestamped exactly at `horizon` are
    /// still delivered; later ones are left in the queue.
    pub fn run_until<S, F>(&mut self, state: &mut S, horizon: SimTime, mut handler: F) -> RunStats
    where
        F: FnMut(&mut S, &mut EventQueue<E>, SimTime, E),
    {
        let mut processed = 0u64;
        let mut hit_horizon = false;
        while processed < self.max_events {
            match self.queue.peek_time() {
                None => break,
                Some(t) if t > horizon => {
                    hit_horizon = true;
                    break;
                }
                Some(_) => {}
            }
            let (t, ev) = self.queue.pop().expect("peeked event vanished");
            handler(state, &mut self.queue, t, ev);
            processed += 1;
        }
        RunStats {
            events_processed: processed,
            end_time: self.queue.now(),
            hit_horizon,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_nanos(30), "c");
        q.schedule_at(SimTime::from_nanos(10), "a");
        q.schedule_at(SimTime::from_nanos(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..100 {
            q.schedule_at(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    /// The FIFO tie-break must survive *interleaved* pops and pushes at
    /// the same instant — the case where a lazily-sorted structure could
    /// deliver a late-scheduled event ahead of an earlier equal-time one.
    #[test]
    fn ties_break_by_insertion_order_under_interleaving() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(40);
        q.schedule_at(t, 0);
        q.schedule_at(t, 1);
        assert_eq!(q.pop(), Some((t, 0)));
        // Scheduled *after* the first pop, still at the same instant:
        // must come out after everything already pending at t.
        q.schedule_at(t, 2);
        q.schedule_at(t + SimDuration::from_nanos(1), 3);
        q.schedule_at(t, 4);
        assert_eq!(q.pop(), Some((t, 1)));
        assert_eq!(q.pop(), Some((t, 2)));
        assert_eq!(q.pop(), Some((t, 4)));
        assert_eq!(q.pop(), Some((t + SimDuration::from_nanos(1), 3)));
        assert_eq!(q.pop(), None);
    }

    /// A same-instant flood larger than the spread threshold: width-1
    /// buckets cannot subdivide, so the ladder must sort the batch and
    /// still respect insertion order.
    #[test]
    fn same_instant_flood_stays_fifo() {
        let mut q = EventQueue::new();
        // Force the flood through the ladder (not the bottom fast path)
        // by anchoring an earlier event first.
        q.schedule_at(SimTime::from_nanos(1), usize::MAX);
        let t = SimTime::from_micros(10);
        let n = 4 * SPREAD_THRESHOLD;
        for i in 0..n {
            q.schedule_at(t, i);
        }
        assert_eq!(q.pop().unwrap().1, usize::MAX);
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..n).collect::<Vec<_>>());
    }

    /// Events spanning nanoseconds to seconds exercise the overflow →
    /// rung rebuild path and deep spreading; order must stay exact.
    #[test]
    fn wide_time_span_pops_in_order() {
        let mut q = EventQueue::new();
        let mut times = Vec::new();
        let mut x = 9_301u64;
        for i in 0..5_000u64 {
            // Deterministic LCG mix of near and far times.
            x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(17);
            let t = match i % 4 {
                0 => x % 1_000,                     // ns-scale
                1 => 1_000_000 + x % 1_000_000,     // ms-scale
                2 => x % 50_000,                    // µs-scale
                _ => 1_000_000_000 + x % 1_000_000, // s-scale
            };
            times.push(t);
            q.schedule_at(SimTime::from_nanos(t), i);
        }
        let mut last = (SimTime::ZERO, 0u64);
        let mut count = 0;
        while let Some((t, i)) = q.pop() {
            assert!(
                (t, i) >= last,
                "order violated: {:?} after {:?}",
                (t, i),
                last
            );
            assert_eq!(t.as_nanos(), times[i as usize]);
            last = (t, i);
            count += 1;
        }
        assert_eq!(count, 5_000);
    }

    /// Draining the queue and reusing it must not leave stale ladder
    /// coverage that swallows new events.
    #[test]
    fn drain_and_reuse_is_clean() {
        let mut q = EventQueue::new();
        for i in 0..300u64 {
            q.schedule_at(SimTime::from_nanos(i * 7), i);
        }
        while q.pop().is_some() {}
        assert!(q.is_empty());
        // Re-seed far beyond the old span, then just after `now`.
        q.schedule_at(SimTime::from_millis(5), 1_000);
        q.schedule_at(SimTime::from_micros(3), 1_001);
        assert_eq!(q.pop().unwrap().1, 1_001);
        assert_eq!(q.pop().unwrap().1, 1_000);
        assert!(q.pop().is_none());
    }

    /// A dense ascending burst scheduled while `bottom_limit` sits far in
    /// the future (one lone timer pinned it) must trigger the spill valve
    /// and still pop in exact order.
    #[test]
    fn dense_burst_under_far_bottom_limit_spills_and_stays_ordered() {
        let mut q = EventQueue::new();
        // Lone far timer: bottom_limit ratchets to +1 ms.
        q.schedule_at(SimTime::from_millis(1), u64::MAX);
        // Grant-burst pattern: thousands of ascending near events.
        let n = 4 * SPILL_THRESHOLD as u64;
        for i in 0..n {
            q.schedule_at(SimTime::from_nanos(500 + i * 3), i);
        }
        let mut last = (SimTime::ZERO, 0u64);
        for _ in 0..n {
            let (t, i) = q.pop().unwrap();
            assert!((t, i) > last || last == (SimTime::ZERO, 0));
            last = (t, i);
        }
        assert_eq!(q.pop().unwrap().1, u64::MAX);
        assert!(q.pop().is_none());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_nanos(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_nanos(7));
    }

    #[test]
    #[should_panic(expected = "event scheduled in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_nanos(10), ());
        q.pop();
        q.schedule_at(SimTime::from_nanos(9), ());
    }

    #[test]
    fn schedule_after_uses_current_clock() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_nanos(10), 1);
        q.pop();
        q.schedule_after(SimDuration::from_nanos(5), 2);
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_nanos(15));
    }

    #[test]
    fn run_until_respects_horizon() {
        let mut sim = Simulation::new();
        for i in 1..=10u64 {
            sim.queue.schedule_at(SimTime::from_nanos(i * 10), i);
        }
        let mut seen = Vec::new();
        let stats = sim.run_until(&mut seen, SimTime::from_nanos(50), |s, _, _, e| s.push(e));
        assert_eq!(seen, vec![1, 2, 3, 4, 5]);
        assert_eq!(stats.events_processed, 5);
        assert!(stats.hit_horizon);
        assert_eq!(sim.queue.len(), 5);
    }

    #[test]
    fn run_until_drains_queue_without_horizon_flag() {
        let mut sim = Simulation::new();
        sim.queue.schedule_at(SimTime::from_nanos(1), ());
        let stats = sim.run_until(&mut (), SimTime::MAX, |_, _, _, _| {});
        assert_eq!(stats.events_processed, 1);
        assert!(!stats.hit_horizon);
    }

    #[test]
    fn handler_can_schedule_follow_ups() {
        let mut sim = Simulation::new();
        sim.queue.schedule_at(SimTime::from_nanos(1), 0u32);
        let mut count = 0u32;
        sim.run_until(&mut count, SimTime::from_micros(1), |c, q, _, hop| {
            *c += 1;
            if hop < 9 {
                q.schedule_after(SimDuration::from_nanos(3), hop + 1);
            }
        });
        assert_eq!(count, 10);
    }

    #[test]
    fn max_events_budget_stops_runaway_loops() {
        let mut sim = Simulation::new();
        sim.queue.schedule_at(SimTime::from_nanos(1), ());
        sim.max_events = 100;
        let stats = sim.run_until(&mut (), SimTime::MAX, |_, q, _, _| {
            q.schedule_after(SimDuration::from_nanos(1), ());
        });
        assert_eq!(stats.events_processed, 100);
    }

    /// The structural-path counters observe the paths the dedicated
    /// ordering tests force: a dense burst under a far `bottom_limit`
    /// spills, a sparse drain direct-sorts, a same-instant flood spreads
    /// (then falls back to a direct sort of width-1 buckets).
    #[test]
    fn structural_counters_track_ladder_paths() {
        let mut q = EventQueue::new();
        assert_eq!(
            (q.spread_count(), q.spill_count(), q.direct_sort_count()),
            (0, 0, 0)
        );
        // Spill: dense ascending burst while a lone timer holds
        // `bottom_limit` a millisecond out.
        q.schedule_at(SimTime::from_millis(1), u64::MAX);
        for i in 0..4 * SPILL_THRESHOLD as u64 {
            q.schedule_at(SimTime::from_nanos(500 + i * 3), i);
        }
        while q.pop().is_some() {}
        assert!(q.spill_count() >= 1, "dense burst must trip the valve");
        // Direct sort: a drained ladder with a tiny overflow population.
        let spills = q.spill_count();
        q.schedule_at(SimTime::from_millis(2), 1);
        q.schedule_at(SimTime::from_millis(3), 2);
        q.pop();
        assert!(q.direct_sort_count() >= 1, "sparse replenish direct-sorts");
        while q.pop().is_some() {}
        // Spread: an overflow rebuild whose buckets exceed the threshold.
        let n = 4 * SPREAD_THRESHOLD as u64;
        q.schedule_at(SimTime::from_millis(4), u64::MAX);
        for i in 0..n {
            q.schedule_at(SimTime::from_millis(10) + SimDuration::from_nanos(i / 8), i);
        }
        while q.pop().is_some() {}
        assert!(q.spread_count() >= 1, "dense bucket must spread");
        assert_eq!(q.spill_count(), spills, "no further spills expected");
    }

    #[test]
    fn scheduled_total_counts_everything() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_nanos(1), ());
        q.schedule_at(SimTime::from_nanos(2), ());
        q.pop();
        q.clear();
        assert_eq!(q.scheduled_total(), 2);
        assert!(q.is_empty());
    }

    #[test]
    fn extreme_timestamps_are_handled() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_nanos(u64::MAX), 2);
        q.schedule_at(SimTime::from_nanos(u64::MAX - 1), 1);
        q.schedule_at(SimTime::from_nanos(0), 0);
        assert_eq!(q.pop().unwrap().1, 0);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.now(), SimTime::MAX);
    }

    /// A rung rebuild whose span reaches `u64::MAX` saturates the grid's
    /// `end`; events at the extreme timestamp must still land in a valid
    /// bucket and pop in order (more than `DIRECT_SORT` events force the
    /// bucketing path, which the small-population test above skips).
    #[test]
    fn saturated_rung_span_keeps_extreme_timestamps() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::ZERO, 0u64);
        let n = 3 * DIRECT_SORT as u64;
        for i in 1..n {
            q.schedule_at(SimTime::from_nanos(i * 1_000), i);
        }
        q.schedule_at(SimTime::from_nanos(u64::MAX), n);
        q.schedule_at(SimTime::from_nanos(u64::MAX), n + 1);
        for want in 0..=n + 1 {
            assert_eq!(q.pop().unwrap().1, want);
        }
        assert!(q.pop().is_none());
    }
}
