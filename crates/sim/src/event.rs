//! Stable-order event queue and simulation driver.
//!
//! The queue is generic over the event payload: domain crates define an
//! event `enum` and a handler that matches on it, keeping all mutable state
//! in one place (the handler's `&mut S`). Events scheduled for the same
//! instant are delivered in insertion order, which makes every run
//! deterministic given a fixed seed.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

/// An event payload scheduled for a specific instant.
struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    /// Reversed so that `BinaryHeap` (a max-heap) pops the *earliest*
    /// `(time, seq)` pair first.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A future-event list with a monotonically advancing clock.
///
/// Invariants:
/// * [`EventQueue::pop`] never returns events out of `(time, seq)` order;
/// * the clock (`now`) never moves backwards;
/// * scheduling an event strictly in the past is a logic error and panics.
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    seq: u64,
    now: SimTime,
    scheduled_total: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at t = 0.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            scheduled_total: 0,
        }
    }

    /// The current simulated time: the timestamp of the last popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `payload` for the absolute instant `at`.
    ///
    /// # Panics
    /// Panics if `at` is earlier than the current clock: an event in the
    /// past indicates a bug in the caller's timing logic, and silently
    /// reordering it would corrupt the run.
    pub fn schedule_at(&mut self, at: SimTime, payload: E) {
        assert!(
            at >= self.now,
            "event scheduled in the past: at={at} now={}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.scheduled_total += 1;
        self.heap.push(Scheduled {
            time: at,
            seq,
            payload,
        });
    }

    /// Schedules `payload` for `delay` after the current clock.
    pub fn schedule_after(&mut self, delay: SimDuration, payload: E) {
        self.schedule_at(self.now + delay, payload);
    }

    /// Removes and returns the earliest event, advancing the clock to its
    /// timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let ev = self.heap.pop()?;
        debug_assert!(ev.time >= self.now, "event queue clock went backwards");
        self.now = ev.time;
        Some((ev.time, ev.payload))
    }

    /// The timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled on this queue.
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Drops all pending events without advancing the clock.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

/// Statistics returned by a completed [`Simulation`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunStats {
    /// Events delivered to the handler.
    pub events_processed: u64,
    /// Clock value when the run stopped.
    pub end_time: SimTime,
    /// True if the run stopped because the event horizon was reached (rather
    /// than the queue draining or the event budget being exhausted).
    pub hit_horizon: bool,
}

/// A thin driver that repeatedly pops events and hands them to a handler
/// together with mutable access to the queue (so handlers can schedule
/// follow-up events) and to the caller's state.
pub struct Simulation<E> {
    /// The underlying event queue. Exposed so that setup code can seed
    /// initial events before calling [`Simulation::run_until`].
    pub queue: EventQueue<E>,
    /// Safety valve: the run aborts after this many events. Defaults to
    /// `u64::MAX` (disabled).
    pub max_events: u64,
}

impl<E> Default for Simulation<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Simulation<E> {
    /// Creates a driver with an empty queue and no event budget.
    pub fn new() -> Self {
        Simulation {
            queue: EventQueue::new(),
            max_events: u64::MAX,
        }
    }

    /// Runs until the queue drains, the clock passes `horizon`, or the event
    /// budget is exhausted. Events timestamped exactly at `horizon` are
    /// still delivered; later ones are left in the queue.
    pub fn run_until<S, F>(&mut self, state: &mut S, horizon: SimTime, mut handler: F) -> RunStats
    where
        F: FnMut(&mut S, &mut EventQueue<E>, SimTime, E),
    {
        let mut processed = 0u64;
        let mut hit_horizon = false;
        while processed < self.max_events {
            match self.queue.peek_time() {
                None => break,
                Some(t) if t > horizon => {
                    hit_horizon = true;
                    break;
                }
                Some(_) => {}
            }
            let (t, ev) = self.queue.pop().expect("peeked event vanished");
            handler(state, &mut self.queue, t, ev);
            processed += 1;
        }
        RunStats {
            events_processed: processed,
            end_time: self.queue.now(),
            hit_horizon,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_nanos(30), "c");
        q.schedule_at(SimTime::from_nanos(10), "a");
        q.schedule_at(SimTime::from_nanos(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..100 {
            q.schedule_at(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_nanos(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_nanos(7));
    }

    #[test]
    #[should_panic(expected = "event scheduled in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_nanos(10), ());
        q.pop();
        q.schedule_at(SimTime::from_nanos(9), ());
    }

    #[test]
    fn schedule_after_uses_current_clock() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_nanos(10), 1);
        q.pop();
        q.schedule_after(SimDuration::from_nanos(5), 2);
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_nanos(15));
    }

    #[test]
    fn run_until_respects_horizon() {
        let mut sim = Simulation::new();
        for i in 1..=10u64 {
            sim.queue.schedule_at(SimTime::from_nanos(i * 10), i);
        }
        let mut seen = Vec::new();
        let stats = sim.run_until(&mut seen, SimTime::from_nanos(50), |s, _, _, e| s.push(e));
        assert_eq!(seen, vec![1, 2, 3, 4, 5]);
        assert_eq!(stats.events_processed, 5);
        assert!(stats.hit_horizon);
        assert_eq!(sim.queue.len(), 5);
    }

    #[test]
    fn run_until_drains_queue_without_horizon_flag() {
        let mut sim = Simulation::new();
        sim.queue.schedule_at(SimTime::from_nanos(1), ());
        let stats = sim.run_until(&mut (), SimTime::MAX, |_, _, _, _| {});
        assert_eq!(stats.events_processed, 1);
        assert!(!stats.hit_horizon);
    }

    #[test]
    fn handler_can_schedule_follow_ups() {
        let mut sim = Simulation::new();
        sim.queue.schedule_at(SimTime::from_nanos(1), 0u32);
        let mut count = 0u32;
        sim.run_until(&mut count, SimTime::from_micros(1), |c, q, _, hop| {
            *c += 1;
            if hop < 9 {
                q.schedule_after(SimDuration::from_nanos(3), hop + 1);
            }
        });
        assert_eq!(count, 10);
    }

    #[test]
    fn max_events_budget_stops_runaway_loops() {
        let mut sim = Simulation::new();
        sim.queue.schedule_at(SimTime::from_nanos(1), ());
        sim.max_events = 100;
        let stats = sim.run_until(&mut (), SimTime::MAX, |_, q, _, _| {
            q.schedule_after(SimDuration::from_nanos(1), ());
        });
        assert_eq!(stats.events_processed, 100);
    }

    #[test]
    fn scheduled_total_counts_everything() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_nanos(1), ());
        q.schedule_at(SimTime::from_nanos(2), ());
        q.pop();
        q.clear();
        assert_eq!(q.scheduled_total(), 2);
        assert!(q.is_empty());
    }
}
