//! Configurable look-up rules: a TCAM-like priority rule table.
//!
//! The paper's processing logic "classifies packets into flows based on
//! configurable look-up rules". On the NetFPGA this is a TCAM/BCAM lookup;
//! here it is a priority-ordered list of [`Rule`]s whose matchers support
//! the three field kinds hardware match engines provide:
//!
//! * **prefix** match on source/destination address (LPM semantics come
//!   from [`LpmTable`] when only the destination matters);
//! * **range** match on transport ports;
//! * **exact** match on protocol.
//!
//! First (highest-priority) hit wins, like a TCAM. A default action covers
//! misses.

mod trie;

pub use trie::LpmTable;

use crate::fivetuple::FiveTuple;
use crate::types::{IpProtocol, PortNo, TrafficClass};
use crate::wire::Ipv4Addr;

/// What to do with a matching packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Action {
    /// Class to assign (drives EPS/OCS mapping and priority).
    pub class: TrafficClass,
    /// Optional egress override; `None` keeps the destination-derived port.
    pub out_port: Option<PortNo>,
}

impl Action {
    /// An action that only sets the class.
    pub fn classify(class: TrafficClass) -> Action {
        Action {
            class,
            out_port: None,
        }
    }
}

/// A single match entry. `None` fields are wildcards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RuleMatch {
    /// Source prefix `(addr, prefix_len)`.
    pub src_prefix: Option<(Ipv4Addr, u8)>,
    /// Destination prefix `(addr, prefix_len)`.
    pub dst_prefix: Option<(Ipv4Addr, u8)>,
    /// Inclusive source-port range.
    pub src_port: Option<(u16, u16)>,
    /// Inclusive destination-port range.
    pub dst_port: Option<(u16, u16)>,
    /// Exact protocol.
    pub proto: Option<IpProtocol>,
}

fn prefix_matches(addr: Ipv4Addr, prefix: Ipv4Addr, len: u8) -> bool {
    debug_assert!(len <= 32);
    if len == 0 {
        return true;
    }
    let mask = if len == 32 {
        u32::MAX
    } else {
        !(u32::MAX >> len)
    };
    (addr.to_u32() & mask) == (prefix.to_u32() & mask)
}

impl RuleMatch {
    /// True if every non-wildcard field matches.
    pub fn matches(&self, t: &FiveTuple) -> bool {
        if let Some((p, l)) = self.src_prefix {
            if !prefix_matches(t.src, p, l) {
                return false;
            }
        }
        if let Some((p, l)) = self.dst_prefix {
            if !prefix_matches(t.dst, p, l) {
                return false;
            }
        }
        if let Some((lo, hi)) = self.src_port {
            if !(lo..=hi).contains(&t.src_port) {
                return false;
            }
        }
        if let Some((lo, hi)) = self.dst_port {
            if !(lo..=hi).contains(&t.dst_port) {
                return false;
            }
        }
        if let Some(p) = self.proto {
            if p != t.proto {
                return false;
            }
        }
        true
    }

    /// Validates field sanity (prefix lengths, range ordering).
    pub fn validate(&self) -> Result<(), String> {
        for (name, pfx) in [("src", self.src_prefix), ("dst", self.dst_prefix)] {
            if let Some((_, l)) = pfx {
                if l > 32 {
                    return Err(format!("{name} prefix length {l} > 32"));
                }
            }
        }
        for (name, range) in [("src", self.src_port), ("dst", self.dst_port)] {
            if let Some((lo, hi)) = range {
                if lo > hi {
                    return Err(format!("{name} port range [{lo}, {hi}] inverted"));
                }
            }
        }
        Ok(())
    }
}

/// A prioritized rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rule {
    /// Larger numbers are consulted first (TCAM entry order).
    pub priority: i32,
    /// Match condition.
    pub matcher: RuleMatch,
    /// Action on match.
    pub action: Action,
}

/// A priority-ordered rule table with a default action.
#[derive(Debug, Clone)]
pub struct RuleTable {
    rules: Vec<Rule>,
    default_action: Action,
    lookups: u64,
    hits: u64,
}

impl RuleTable {
    /// Creates a table with only a default action.
    pub fn new(default_action: Action) -> Self {
        RuleTable {
            rules: Vec::new(),
            default_action,
            lookups: 0,
            hits: 0,
        }
    }

    /// Inserts a rule, keeping the table sorted by descending priority.
    /// Insertion order is preserved among equal priorities (earlier wins).
    ///
    /// # Panics
    /// Panics if the matcher is malformed — rule tables are static
    /// configuration, so this is a programming error.
    pub fn insert(&mut self, rule: Rule) {
        rule.matcher.validate().expect("malformed rule");
        let pos = self.rules.partition_point(|r| r.priority >= rule.priority);
        self.rules.insert(pos, rule);
    }

    /// Number of installed rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True if no rules are installed (default action still applies).
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Looks up the action for a tuple: first hit in priority order, else
    /// the default.
    pub fn lookup(&mut self, t: &FiveTuple) -> Action {
        self.lookups += 1;
        for r in &self.rules {
            if r.matcher.matches(t) {
                self.hits += 1;
                return r.action;
            }
        }
        self.default_action
    }

    /// `(lookups, rule hits)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.lookups, self.hits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fivetuple::build_udp_frame;

    fn tuple(src: u16, dst: u16, sport: u16, dport: u16) -> FiveTuple {
        FiveTuple::from_frame(&build_udp_frame(src, dst, sport, dport, b"")).unwrap()
    }

    #[test]
    fn default_action_on_empty_table() {
        let mut t = RuleTable::new(Action::classify(TrafficClass::Short));
        assert!(t.is_empty());
        let a = t.lookup(&tuple(1, 2, 10, 20));
        assert_eq!(a.class, TrafficClass::Short);
        assert_eq!(t.stats(), (1, 0));
    }

    #[test]
    fn priority_order_wins() {
        let mut t = RuleTable::new(Action::classify(TrafficClass::Short));
        t.insert(Rule {
            priority: 1,
            matcher: RuleMatch::default(), // match-all
            action: Action::classify(TrafficClass::Bulk),
        });
        t.insert(Rule {
            priority: 10,
            matcher: RuleMatch {
                dst_port: Some((5000, 5100)),
                ..RuleMatch::default()
            },
            action: Action::classify(TrafficClass::Interactive),
        });
        assert_eq!(
            t.lookup(&tuple(1, 2, 1, 5004)).class,
            TrafficClass::Interactive
        );
        assert_eq!(t.lookup(&tuple(1, 2, 1, 80)).class, TrafficClass::Bulk);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn prefix_matching_semantics() {
        assert!(prefix_matches(
            Ipv4Addr::new(10, 0, 3, 7),
            Ipv4Addr::new(10, 0, 0, 0),
            16
        ));
        assert!(!prefix_matches(
            Ipv4Addr::new(10, 1, 3, 7),
            Ipv4Addr::new(10, 0, 0, 0),
            16
        ));
        // /0 matches everything, /32 only exact.
        assert!(prefix_matches(
            Ipv4Addr::new(1, 2, 3, 4),
            Ipv4Addr::new(9, 9, 9, 9),
            0
        ));
        assert!(prefix_matches(
            Ipv4Addr::new(1, 2, 3, 4),
            Ipv4Addr::new(1, 2, 3, 4),
            32
        ));
        assert!(!prefix_matches(
            Ipv4Addr::new(1, 2, 3, 5),
            Ipv4Addr::new(1, 2, 3, 4),
            32
        ));
    }

    #[test]
    fn multi_field_rule_requires_all_fields() {
        let matcher = RuleMatch {
            src_prefix: Some((Ipv4Addr::new(10, 0, 0, 0), 24)),
            dst_port: Some((80, 80)),
            proto: Some(IpProtocol::Udp),
            ..RuleMatch::default()
        };
        assert!(matcher.matches(&tuple(1, 2, 99, 80)));
        assert!(!matcher.matches(&tuple(300, 2, 99, 80))); // src 10.0.1.44 not in /24
        assert!(!matcher.matches(&tuple(1, 2, 99, 81))); // port mismatch
    }

    #[test]
    fn equal_priority_prefers_earlier_insertion() {
        let mut t = RuleTable::new(Action::classify(TrafficClass::Short));
        t.insert(Rule {
            priority: 5,
            matcher: RuleMatch::default(),
            action: Action::classify(TrafficClass::Bulk),
        });
        t.insert(Rule {
            priority: 5,
            matcher: RuleMatch::default(),
            action: Action::classify(TrafficClass::Interactive),
        });
        assert_eq!(t.lookup(&tuple(1, 2, 3, 4)).class, TrafficClass::Bulk);
    }

    #[test]
    fn out_port_override() {
        let mut t = RuleTable::new(Action::classify(TrafficClass::Short));
        t.insert(Rule {
            priority: 1,
            matcher: RuleMatch::default(),
            action: Action {
                class: TrafficClass::Bulk,
                out_port: Some(PortNo(9)),
            },
        });
        assert_eq!(t.lookup(&tuple(1, 2, 3, 4)).out_port, Some(PortNo(9)));
    }

    #[test]
    #[should_panic(expected = "malformed rule")]
    fn malformed_rule_rejected() {
        let mut t = RuleTable::new(Action::classify(TrafficClass::Short));
        t.insert(Rule {
            priority: 1,
            matcher: RuleMatch {
                dst_port: Some((100, 50)),
                ..RuleMatch::default()
            },
            action: Action::classify(TrafficClass::Bulk),
        });
    }

    #[test]
    fn validate_messages() {
        assert!(RuleMatch {
            src_prefix: Some((Ipv4Addr::new(0, 0, 0, 0), 33)),
            ..RuleMatch::default()
        }
        .validate()
        .is_err());
        assert!(RuleMatch::default().validate().is_ok());
    }
}
