//! Longest-prefix-match table: a binary trie over IPv4 prefixes.
//!
//! Used for the destination-based egress mapping ("which switch port does
//! this prefix live behind"), the second half of the paper's configurable
//! look-up step. A binary trie matches how LPM engines are synthesized in
//! FPGA lookups and is simple to verify.

use crate::wire::Ipv4Addr;

#[derive(Debug, Clone)]
struct Node<V> {
    value: Option<V>,
    children: [Option<Box<Node<V>>>; 2],
}

impl<V> Default for Node<V> {
    fn default() -> Self {
        Node {
            value: None,
            children: [None, None],
        }
    }
}

/// A longest-prefix-match table mapping IPv4 prefixes to values.
#[derive(Debug, Clone)]
pub struct LpmTable<V> {
    root: Node<V>,
    entries: usize,
}

impl<V> Default for LpmTable<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> LpmTable<V> {
    /// Creates an empty table.
    pub fn new() -> Self {
        LpmTable {
            root: Node::default(),
            entries: 0,
        }
    }

    /// Number of installed prefixes.
    pub fn len(&self) -> usize {
        self.entries
    }

    /// True if no prefixes are installed.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Inserts (or replaces) a prefix of length `len`, returning the
    /// previous value if the exact prefix existed.
    ///
    /// # Panics
    /// Panics if `len > 32`.
    pub fn insert(&mut self, prefix: Ipv4Addr, len: u8, value: V) -> Option<V> {
        assert!(len <= 32, "prefix length {len} > 32");
        let bits = prefix.to_u32();
        let mut node = &mut self.root;
        for i in 0..len {
            let bit = ((bits >> (31 - i)) & 1) as usize;
            node = node.children[bit].get_or_insert_with(Box::default);
        }
        let prev = node.value.replace(value);
        if prev.is_none() {
            self.entries += 1;
        }
        prev
    }

    /// Longest-prefix lookup.
    pub fn lookup(&self, addr: Ipv4Addr) -> Option<&V> {
        let bits = addr.to_u32();
        let mut node = &self.root;
        let mut best = node.value.as_ref();
        for i in 0..32 {
            let bit = ((bits >> (31 - i)) & 1) as usize;
            match &node.children[bit] {
                Some(child) => {
                    node = child;
                    if node.value.is_some() {
                        best = node.value.as_ref();
                    }
                }
                None => break,
            }
        }
        best
    }

    /// Exact-prefix lookup (no LPM fallback).
    pub fn get_exact(&self, prefix: Ipv4Addr, len: u8) -> Option<&V> {
        assert!(len <= 32, "prefix length {len} > 32");
        let bits = prefix.to_u32();
        let mut node = &self.root;
        for i in 0..len {
            let bit = ((bits >> (31 - i)) & 1) as usize;
            node = node.children[bit].as_ref()?;
        }
        node.value.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(a: u8, b: u8, c: u8, d: u8) -> Ipv4Addr {
        Ipv4Addr::new(a, b, c, d)
    }

    #[test]
    fn longest_prefix_wins() {
        let mut t = LpmTable::new();
        t.insert(ip(10, 0, 0, 0), 8, "coarse");
        t.insert(ip(10, 1, 0, 0), 16, "finer");
        t.insert(ip(10, 1, 2, 0), 24, "finest");
        assert_eq!(t.lookup(ip(10, 9, 9, 9)), Some(&"coarse"));
        assert_eq!(t.lookup(ip(10, 1, 9, 9)), Some(&"finer"));
        assert_eq!(t.lookup(ip(10, 1, 2, 9)), Some(&"finest"));
        assert_eq!(t.lookup(ip(11, 0, 0, 1)), None);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn default_route_via_zero_length_prefix() {
        let mut t = LpmTable::new();
        t.insert(ip(0, 0, 0, 0), 0, "default");
        t.insert(ip(10, 0, 0, 0), 8, "ten");
        assert_eq!(t.lookup(ip(8, 8, 8, 8)), Some(&"default"));
        assert_eq!(t.lookup(ip(10, 0, 0, 1)), Some(&"ten"));
    }

    #[test]
    fn replace_returns_previous() {
        let mut t = LpmTable::new();
        assert_eq!(t.insert(ip(10, 0, 0, 0), 8, 1), None);
        assert_eq!(t.insert(ip(10, 0, 0, 0), 8, 2), Some(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup(ip(10, 0, 0, 1)), Some(&2));
    }

    #[test]
    fn host_routes_are_exact() {
        let mut t = LpmTable::new();
        t.insert(ip(10, 0, 0, 5), 32, 5usize);
        assert_eq!(t.lookup(ip(10, 0, 0, 5)), Some(&5));
        assert_eq!(t.lookup(ip(10, 0, 0, 6)), None);
    }

    #[test]
    fn exact_get_does_not_fall_back() {
        let mut t = LpmTable::new();
        t.insert(ip(10, 0, 0, 0), 8, "coarse");
        assert_eq!(t.get_exact(ip(10, 0, 0, 0), 8), Some(&"coarse"));
        assert_eq!(t.get_exact(ip(10, 0, 0, 0), 16), None);
    }

    #[test]
    fn dense_host_table_like_the_testbed() {
        // The testbed installs one /32 per host port: check a realistic
        // table of 256 hosts resolves every address correctly.
        let mut t = LpmTable::new();
        for i in 0..256u16 {
            t.insert(Ipv4Addr::for_host(i), 32, i);
        }
        assert_eq!(t.len(), 256);
        for i in 0..256u16 {
            assert_eq!(t.lookup(Ipv4Addr::for_host(i)), Some(&i));
        }
    }

    #[test]
    #[should_panic(expected = "> 32")]
    fn oversized_prefix_len_panics() {
        let mut t: LpmTable<()> = LpmTable::new();
        t.insert(ip(0, 0, 0, 0), 33, ());
    }
}
