//! Minimal TCP header: the fields a switch classifier reads. Options are
//! skipped via the data offset; sequence-space logic lives in endpoints,
//! not in a switch, and is out of scope.

use super::{checksum, Ipv4Addr, WireError};

/// Minimal TCP header length (no options).
pub const MIN_HEADER_LEN: usize = 20;

/// TCP flag bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Flags {
    /// SYN: connection open.
    pub syn: bool,
    /// ACK: acknowledgement valid.
    pub ack: bool,
    /// FIN: sender finished.
    pub fin: bool,
    /// RST: reset.
    pub rst: bool,
    /// PSH: push.
    pub psh: bool,
}

impl Flags {
    fn to_byte(self) -> u8 {
        (self.fin as u8)
            | (self.syn as u8) << 1
            | (self.rst as u8) << 2
            | (self.psh as u8) << 3
            | (self.ack as u8) << 4
    }

    fn from_byte(b: u8) -> Flags {
        Flags {
            fin: b & 0x01 != 0,
            syn: b & 0x02 != 0,
            rst: b & 0x04 != 0,
            psh: b & 0x08 != 0,
            ack: b & 0x10 != 0,
        }
    }
}

/// Typed TCP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Repr {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgement number (meaningful when `flags.ack`).
    pub ack_no: u32,
    /// Flag bits.
    pub flags: Flags,
    /// Receive window.
    pub window: u16,
}

impl Repr {
    /// Parses a TCP segment over IPv4, verifying the checksum.
    pub fn parse(data: &[u8], src: Ipv4Addr, dst: Ipv4Addr) -> Result<(Repr, &[u8]), WireError> {
        if data.len() < MIN_HEADER_LEN {
            return Err(WireError::Truncated);
        }
        let data_off = ((data[12] >> 4) as usize) * 4;
        if data_off < MIN_HEADER_LEN {
            return Err(WireError::BadHeaderLen(data[12] >> 4));
        }
        if data_off > data.len() {
            return Err(WireError::Truncated);
        }
        let mut acc = checksum::pseudo_header(src, dst, 6, data.len() as u16);
        acc += checksum::sum(data);
        if checksum::fold(acc) != 0xffff {
            return Err(WireError::BadChecksum);
        }
        Ok((
            Repr {
                src_port: u16::from_be_bytes([data[0], data[1]]),
                dst_port: u16::from_be_bytes([data[2], data[3]]),
                seq: u32::from_be_bytes([data[4], data[5], data[6], data[7]]),
                ack_no: u32::from_be_bytes([data[8], data[9], data[10], data[11]]),
                flags: Flags::from_byte(data[13]),
                window: u16::from_be_bytes([data[14], data[15]]),
            },
            &data[data_off..],
        ))
    }

    /// Emits an option-less header + checksum; payload must already be at
    /// `buf[MIN_HEADER_LEN..MIN_HEADER_LEN+payload_len]`.
    pub fn emit(
        &self,
        buf: &mut [u8],
        payload_len: usize,
        src: Ipv4Addr,
        dst: Ipv4Addr,
    ) -> Result<usize, WireError> {
        let len = MIN_HEADER_LEN + payload_len;
        if buf.len() < len {
            return Err(WireError::Truncated);
        }
        buf[0..2].copy_from_slice(&self.src_port.to_be_bytes());
        buf[2..4].copy_from_slice(&self.dst_port.to_be_bytes());
        buf[4..8].copy_from_slice(&self.seq.to_be_bytes());
        buf[8..12].copy_from_slice(&self.ack_no.to_be_bytes());
        buf[12] = 5 << 4;
        buf[13] = self.flags.to_byte();
        buf[14..16].copy_from_slice(&self.window.to_be_bytes());
        buf[16..18].copy_from_slice(&[0, 0]); // checksum
        buf[18..20].copy_from_slice(&[0, 0]); // urgent pointer (ignored)
        let mut acc = checksum::pseudo_header(src, dst, 6, len as u16);
        acc += checksum::sum(&buf[..len]);
        let c = checksum::finish(acc);
        buf[16..18].copy_from_slice(&c.to_be_bytes());
        Ok(len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs() -> (Ipv4Addr, Ipv4Addr) {
        (Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2))
    }

    fn sample() -> Repr {
        Repr {
            src_port: 43210,
            dst_port: 80,
            seq: 0xdead_beef,
            ack_no: 0x0102_0304,
            flags: Flags {
                syn: true,
                ack: true,
                ..Flags::default()
            },
            window: 65535,
        }
    }

    #[test]
    fn round_trip() {
        let (src, dst) = addrs();
        let repr = sample();
        let mut buf = vec![0u8; MIN_HEADER_LEN + 3];
        buf[MIN_HEADER_LEN..].copy_from_slice(b"abc");
        repr.emit(&mut buf, 3, src, dst).unwrap();
        let (parsed, payload) = Repr::parse(&buf, src, dst).unwrap();
        assert_eq!(parsed, repr);
        assert_eq!(payload, b"abc");
    }

    #[test]
    fn corruption_detected() {
        let (src, dst) = addrs();
        let mut buf = vec![0u8; MIN_HEADER_LEN];
        sample().emit(&mut buf, 0, src, dst).unwrap();
        buf[5] ^= 0x40;
        assert_eq!(Repr::parse(&buf, src, dst), Err(WireError::BadChecksum));
    }

    #[test]
    fn data_offset_with_options_is_skipped() {
        let (src, dst) = addrs();
        // Hand-build a header with data offset 6 (one 4-byte option).
        let mut buf = vec![0u8; 24 + 2];
        sample().emit(&mut buf, 0, src, dst).ok();
        buf[12] = 6 << 4;
        buf[20..24].copy_from_slice(&[1, 1, 1, 1]); // NOP options
        buf[24..26].copy_from_slice(b"hi");
        // Recompute checksum manually.
        buf[16..18].copy_from_slice(&[0, 0]);
        let mut acc = checksum::pseudo_header(src, dst, 6, buf.len() as u16);
        acc += checksum::sum(&buf);
        let c = checksum::finish(acc);
        buf[16..18].copy_from_slice(&c.to_be_bytes());
        let (_, payload) = Repr::parse(&buf, src, dst).unwrap();
        assert_eq!(payload, b"hi");
    }

    #[test]
    fn bad_data_offset_rejected() {
        let (src, dst) = addrs();
        let mut buf = vec![0u8; MIN_HEADER_LEN];
        sample().emit(&mut buf, 0, src, dst).unwrap();
        buf[12] = 4 << 4; // below minimum
        assert_eq!(Repr::parse(&buf, src, dst), Err(WireError::BadHeaderLen(4)));
        buf[12] = 15 << 4; // beyond buffer
        assert_eq!(Repr::parse(&buf, src, dst), Err(WireError::Truncated));
    }

    #[test]
    fn flag_bits_round_trip() {
        for bits in 0..32u8 {
            assert_eq!(Flags::from_byte(bits).to_byte(), bits & 0x1f);
        }
    }
}
