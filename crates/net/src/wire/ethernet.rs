//! Ethernet II framing.
//!
//! 802.1Q tags and 802.3 length framing are not modelled (the testbed's
//! hosts speak plain Ethernet II, as in the smoltcp feature set).

use super::WireError;

/// A 48-bit MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address ff:ff:ff:ff:ff:ff.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);

    /// Locally administered unicast address derived from a host index —
    /// the convention used by the testbed's emulated hosts.
    pub fn for_host(i: u16) -> MacAddr {
        MacAddr([0x02, 0x00, 0x00, 0x00, (i >> 8) as u8, i as u8])
    }

    /// True for group (multicast/broadcast) addresses.
    pub fn is_multicast(self) -> bool {
        self.0[0] & 0x01 != 0
    }
}

impl core::fmt::Display for MacAddr {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let a = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            a[0], a[1], a[2], a[3], a[4], a[5]
        )
    }
}

/// EtherType of the carried payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EtherType {
    /// IPv4 (0x0800).
    Ipv4,
    /// ARP (0x0806).
    Arp,
    /// Any other value.
    Other(u16),
}

impl EtherType {
    /// Parses the 16-bit type field.
    pub fn from_u16(v: u16) -> EtherType {
        match v {
            0x0800 => EtherType::Ipv4,
            0x0806 => EtherType::Arp,
            other => EtherType::Other(other),
        }
    }

    /// The wire value.
    pub fn to_u16(self) -> u16 {
        match self {
            EtherType::Ipv4 => 0x0800,
            EtherType::Arp => 0x0806,
            EtherType::Other(v) => v,
        }
    }
}

/// Length of the Ethernet II header.
pub const HEADER_LEN: usize = 14;

/// Typed Ethernet II header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Repr {
    /// Destination MAC.
    pub dst: MacAddr,
    /// Source MAC.
    pub src: MacAddr,
    /// Payload type.
    pub ethertype: EtherType,
}

impl Repr {
    /// Parses a frame, returning the header and payload slice.
    pub fn parse(frame: &[u8]) -> Result<(Repr, &[u8]), WireError> {
        if frame.len() < HEADER_LEN {
            return Err(WireError::Truncated);
        }
        let mut dst = [0u8; 6];
        let mut src = [0u8; 6];
        dst.copy_from_slice(&frame[0..6]);
        src.copy_from_slice(&frame[6..12]);
        let ethertype = EtherType::from_u16(u16::from_be_bytes([frame[12], frame[13]]));
        Ok((
            Repr {
                dst: MacAddr(dst),
                src: MacAddr(src),
                ethertype,
            },
            &frame[HEADER_LEN..],
        ))
    }

    /// Emits the header into `buf`, returning the bytes written.
    pub fn emit(&self, buf: &mut [u8]) -> Result<usize, WireError> {
        if buf.len() < HEADER_LEN {
            return Err(WireError::Truncated);
        }
        buf[0..6].copy_from_slice(&self.dst.0);
        buf[6..12].copy_from_slice(&self.src.0);
        buf[12..14].copy_from_slice(&self.ethertype.to_u16().to_be_bytes());
        Ok(HEADER_LEN)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let repr = Repr {
            dst: MacAddr::BROADCAST,
            src: MacAddr::for_host(3),
            ethertype: EtherType::Ipv4,
        };
        let mut buf = [0u8; 64];
        let n = repr.emit(&mut buf).unwrap();
        assert_eq!(n, HEADER_LEN);
        let (parsed, payload) = Repr::parse(&buf).unwrap();
        assert_eq!(parsed, repr);
        assert_eq!(payload.len(), 64 - HEADER_LEN);
    }

    #[test]
    fn truncated_frames_rejected() {
        assert_eq!(Repr::parse(&[0u8; 13]), Err(WireError::Truncated));
        let repr = Repr {
            dst: MacAddr::BROADCAST,
            src: MacAddr::for_host(0),
            ethertype: EtherType::Arp,
        };
        assert_eq!(repr.emit(&mut [0u8; 10]), Err(WireError::Truncated));
    }

    #[test]
    fn ethertype_mapping() {
        assert_eq!(EtherType::from_u16(0x0800), EtherType::Ipv4);
        assert_eq!(EtherType::from_u16(0x0806), EtherType::Arp);
        assert_eq!(EtherType::from_u16(0x86dd).to_u16(), 0x86dd);
    }

    #[test]
    fn host_macs_are_unicast_and_unique() {
        assert!(!MacAddr::for_host(1).is_multicast());
        assert!(MacAddr::BROADCAST.is_multicast());
        assert_ne!(MacAddr::for_host(1), MacAddr::for_host(256));
        assert_eq!(MacAddr::for_host(258).to_string(), "02:00:00:00:01:02");
    }
}
