//! The Internet checksum (RFC 1071) and the UDP/TCP pseudo-header.

use super::ipv4::Ipv4Addr;

/// Ones-complement sum over a byte slice (odd trailing byte padded with
/// zero), folded to 16 bits but **not** complemented.
pub fn sum(data: &[u8]) -> u32 {
    let mut acc = 0u32;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        acc += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        acc += u32::from(u16::from_be_bytes([*last, 0]));
    }
    fold(acc)
}

/// Folds carries into the low 16 bits.
pub fn fold(mut acc: u32) -> u32 {
    while acc > 0xffff {
        acc = (acc & 0xffff) + (acc >> 16);
    }
    acc
}

/// Finalizes a folded sum into the checksum field value.
pub fn finish(acc: u32) -> u16 {
    !(fold(acc) as u16)
}

/// Checksum of a standalone header (e.g. IPv4) whose checksum field bytes
/// must be zero when computing.
pub fn checksum(data: &[u8]) -> u16 {
    finish(sum(data))
}

/// The IPv4 pseudo-header contribution for UDP/TCP checksums.
pub fn pseudo_header(src: Ipv4Addr, dst: Ipv4Addr, protocol: u8, length: u16) -> u32 {
    let mut acc = 0u32;
    acc += u32::from(u16::from_be_bytes([src.0[0], src.0[1]]));
    acc += u32::from(u16::from_be_bytes([src.0[2], src.0[3]]));
    acc += u32::from(u16::from_be_bytes([dst.0[0], dst.0[1]]));
    acc += u32::from(u16::from_be_bytes([dst.0[2], dst.0[3]]));
    acc += u32::from(protocol);
    acc += u32::from(length);
    fold(acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The worked example from RFC 1071 §3: the data
    /// 00 01 f2 03 f4 f5 f6 f7 sums to ddf2 (before complement).
    #[test]
    fn rfc1071_reference() {
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(sum(&data), 0xddf2);
        assert_eq!(checksum(&data), !0xddf2);
    }

    #[test]
    fn odd_length_pads_with_zero() {
        assert_eq!(sum(&[0xab]), sum(&[0xab, 0x00]));
    }

    #[test]
    fn verify_by_reinserting_checksum() {
        // A checksummed message re-sums (including the checksum field) to
        // 0xffff.
        let mut msg = vec![
            0x45, 0x00, 0x00, 0x1c, 0x12, 0x34, 0x00, 0x00, 0x40, 0x11, 0, 0,
        ];
        let c = checksum(&msg);
        msg[10] = (c >> 8) as u8;
        msg[11] = (c & 0xff) as u8;
        assert_eq!(sum(&msg), 0xffff);
    }

    #[test]
    fn fold_handles_large_accumulators() {
        assert_eq!(fold(0x0001_ffff), 1);
        assert_eq!(fold(0xffff_ffff), 0xffff);
        assert_eq!(fold(0x1234), 0x1234);
    }

    #[test]
    fn pseudo_header_is_order_sensitive() {
        let a = Ipv4Addr([10, 0, 0, 1]);
        let b = Ipv4Addr([10, 0, 0, 2]);
        assert_ne!(pseudo_header(a, b, 17, 8), pseudo_header(a, b, 6, 8));
        // Swapping addresses keeps the ones-complement sum identical — a
        // known property (addition is commutative); documents why UDP can't
        // detect src/dst swaps via pseudo header alone.
        assert_eq!(pseudo_header(a, b, 17, 8), pseudo_header(b, a, 17, 8));
    }
}
