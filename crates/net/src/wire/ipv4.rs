//! IPv4 header (no options; options are rejected rather than skipped so the
//! classifier never mis-reads a frame).

use super::{checksum, WireError};
use crate::types::IpProtocol;

/// An IPv4 address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ipv4Addr(pub [u8; 4]);

impl Ipv4Addr {
    /// Builds from four dotted-quad octets.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Self {
        Ipv4Addr([a, b, c, d])
    }

    /// Address of emulated host `i` in the testbed: `10.0.(i/256).(i%256)`.
    pub fn for_host(i: u16) -> Self {
        Ipv4Addr([10, 0, (i >> 8) as u8, i as u8])
    }

    /// The address as a 32-bit big-endian integer (for prefix matching).
    pub fn to_u32(self) -> u32 {
        u32::from_be_bytes(self.0)
    }

    /// Builds from a 32-bit big-endian integer.
    pub fn from_u32(v: u32) -> Self {
        Ipv4Addr(v.to_be_bytes())
    }
}

impl core::fmt::Display for Ipv4Addr {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}.{}.{}.{}", self.0[0], self.0[1], self.0[2], self.0[3])
    }
}

/// Length of an option-less IPv4 header.
pub const HEADER_LEN: usize = 20;

/// Typed IPv4 header (IHL fixed at 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Repr {
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Carried protocol.
    pub protocol: IpProtocol,
    /// Payload length in bytes (excluding this header).
    pub payload_len: u16,
    /// Time to live.
    pub ttl: u8,
    /// DSCP codepoint (ECN bits not modelled).
    pub dscp: u8,
}

impl Repr {
    /// Parses a header, validating version, IHL, length and checksum.
    pub fn parse(data: &[u8]) -> Result<(Repr, &[u8]), WireError> {
        if data.len() < HEADER_LEN {
            return Err(WireError::Truncated);
        }
        let version = data[0] >> 4;
        if version != 4 {
            return Err(WireError::BadVersion(version));
        }
        let ihl = data[0] & 0x0f;
        if ihl != 5 {
            // Options unsupported: refuse rather than guess.
            return Err(WireError::BadHeaderLen(ihl));
        }
        let total_len = u16::from_be_bytes([data[2], data[3]]) as usize;
        if total_len < HEADER_LEN || total_len > data.len() {
            return Err(WireError::Truncated);
        }
        if checksum::sum(&data[..HEADER_LEN]) != 0xffff {
            return Err(WireError::BadChecksum);
        }
        let repr = Repr {
            src: Ipv4Addr([data[12], data[13], data[14], data[15]]),
            dst: Ipv4Addr([data[16], data[17], data[18], data[19]]),
            protocol: IpProtocol::from_byte(data[9]),
            payload_len: (total_len - HEADER_LEN) as u16,
            ttl: data[8],
            dscp: data[1] >> 2,
        };
        Ok((repr, &data[HEADER_LEN..total_len]))
    }

    /// Emits the header (with checksum) into `buf`.
    pub fn emit(&self, buf: &mut [u8]) -> Result<usize, WireError> {
        if buf.len() < HEADER_LEN {
            return Err(WireError::Truncated);
        }
        let total_len = HEADER_LEN as u16 + self.payload_len;
        buf[0] = 0x45;
        buf[1] = self.dscp << 2;
        buf[2..4].copy_from_slice(&total_len.to_be_bytes());
        buf[4..6].copy_from_slice(&[0, 0]); // identification
        buf[6..8].copy_from_slice(&[0x40, 0]); // DF, no fragmentation
        buf[8] = self.ttl;
        buf[9] = self.protocol.to_byte();
        buf[10..12].copy_from_slice(&[0, 0]);
        buf[12..16].copy_from_slice(&self.src.0);
        buf[16..20].copy_from_slice(&self.dst.0);
        let c = checksum::checksum(&buf[..HEADER_LEN]);
        buf[10..12].copy_from_slice(&c.to_be_bytes());
        Ok(HEADER_LEN)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Repr {
        Repr {
            src: Ipv4Addr::for_host(1),
            dst: Ipv4Addr::for_host(2),
            protocol: IpProtocol::Udp,
            payload_len: 8,
            ttl: 64,
            dscp: 46, // EF — the VOIP codepoint
        }
    }

    #[test]
    fn round_trip_with_checksum() {
        let repr = sample();
        let mut buf = vec![0u8; HEADER_LEN + 8];
        repr.emit(&mut buf).unwrap();
        let (parsed, payload) = Repr::parse(&buf).unwrap();
        assert_eq!(parsed, repr);
        assert_eq!(payload.len(), 8);
    }

    #[test]
    fn corrupted_byte_fails_checksum() {
        let mut buf = vec![0u8; HEADER_LEN + 8];
        sample().emit(&mut buf).unwrap();
        buf[15] ^= 0x01;
        assert_eq!(Repr::parse(&buf), Err(WireError::BadChecksum));
    }

    #[test]
    fn version_and_ihl_validation() {
        let mut buf = vec![0u8; HEADER_LEN + 8];
        sample().emit(&mut buf).unwrap();
        let mut v6 = buf.clone();
        v6[0] = 0x65;
        assert_eq!(Repr::parse(&v6), Err(WireError::BadVersion(6)));
        let mut opts = buf.clone();
        opts[0] = 0x46;
        assert_eq!(Repr::parse(&opts), Err(WireError::BadHeaderLen(6)));
    }

    #[test]
    fn total_length_bounds() {
        let mut buf = vec![0u8; HEADER_LEN + 8];
        sample().emit(&mut buf).unwrap();
        // Declared total length beyond buffer.
        buf[2..4].copy_from_slice(&100u16.to_be_bytes());
        assert_eq!(Repr::parse(&buf), Err(WireError::Truncated));
        assert_eq!(Repr::parse(&[0u8; 10]), Err(WireError::Truncated));
    }

    #[test]
    fn payload_slice_honours_total_length() {
        // Buffer longer than total_len (Ethernet padding): payload must be
        // trimmed to the declared length.
        let repr = sample();
        let mut buf = vec![0u8; HEADER_LEN + 60];
        repr.emit(&mut buf).unwrap();
        let (_, payload) = Repr::parse(&buf).unwrap();
        assert_eq!(payload.len(), 8);
    }

    #[test]
    fn host_addresses_are_unique_and_stable() {
        assert_eq!(Ipv4Addr::for_host(1).to_string(), "10.0.0.1");
        assert_eq!(Ipv4Addr::for_host(300).to_string(), "10.0.1.44");
        assert_ne!(Ipv4Addr::for_host(1), Ipv4Addr::for_host(257));
        let a = Ipv4Addr::new(192, 168, 1, 1);
        assert_eq!(Ipv4Addr::from_u32(a.to_u32()), a);
    }
}
