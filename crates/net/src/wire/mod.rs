//! Typed wire formats in the smoltcp `Repr` idiom.
//!
//! Each header type has a `Repr` struct with:
//! * `parse(&[u8]) -> Result<(Repr, &[u8]), WireError>` returning the typed
//!   header and the remaining payload, validating lengths and checksums;
//! * `emit(&self, &mut [u8]) -> Result<usize, WireError>` writing the header
//!   (computing checksums) and returning the bytes written.
//!
//! Only the fields the hybrid-switch classifier needs are modelled; the
//! omissions (IP options, TCP options beyond the data offset, VLAN tags) are
//! deliberate and documented per type.

pub mod checksum;
pub mod ethernet;
pub mod ipv4;
pub mod tcp;
pub mod udp;

pub use ethernet::{EtherType, MacAddr};
pub use ipv4::Ipv4Addr;

/// Errors produced by header parsing/emission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// Buffer shorter than the header (or its declared length).
    Truncated,
    /// IPv4 version field was not 4.
    BadVersion(u8),
    /// Header length field below the legal minimum.
    BadHeaderLen(u8),
    /// Checksum verification failed.
    BadChecksum,
    /// Frame carries a payload type we do not parse.
    Unsupported(u16),
}

impl core::fmt::Display for WireError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "buffer truncated"),
            WireError::BadVersion(v) => write!(f, "bad IP version {v}"),
            WireError::BadHeaderLen(l) => write!(f, "bad header length {l}"),
            WireError::BadChecksum => write!(f, "checksum mismatch"),
            WireError::Unsupported(t) => write!(f, "unsupported type 0x{t:04x}"),
        }
    }
}

impl std::error::Error for WireError {}
