//! UDP header with mandatory checksum (we always compute it; a zero
//! checksum on parse is accepted as "absent" per RFC 768).

use super::{checksum, Ipv4Addr, WireError};

/// Length of the UDP header.
pub const HEADER_LEN: usize = 8;

/// Typed UDP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Repr {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
}

impl Repr {
    /// Parses a UDP datagram carried over IPv4; verifies the checksum when
    /// present (non-zero).
    pub fn parse(data: &[u8], src: Ipv4Addr, dst: Ipv4Addr) -> Result<(Repr, &[u8]), WireError> {
        if data.len() < HEADER_LEN {
            return Err(WireError::Truncated);
        }
        let len = u16::from_be_bytes([data[4], data[5]]) as usize;
        if len < HEADER_LEN || len > data.len() {
            return Err(WireError::Truncated);
        }
        let cksum = u16::from_be_bytes([data[6], data[7]]);
        if cksum != 0 {
            let mut acc = checksum::pseudo_header(src, dst, 17, len as u16);
            acc += checksum::sum(&data[..len]);
            if checksum::fold(acc) != 0xffff {
                return Err(WireError::BadChecksum);
            }
        }
        Ok((
            Repr {
                src_port: u16::from_be_bytes([data[0], data[1]]),
                dst_port: u16::from_be_bytes([data[2], data[3]]),
            },
            &data[HEADER_LEN..len],
        ))
    }

    /// Emits header + checksum for a datagram whose payload is already at
    /// `buf[HEADER_LEN..HEADER_LEN+payload_len]`.
    pub fn emit(
        &self,
        buf: &mut [u8],
        payload_len: usize,
        src: Ipv4Addr,
        dst: Ipv4Addr,
    ) -> Result<usize, WireError> {
        let len = HEADER_LEN + payload_len;
        if buf.len() < len || len > u16::MAX as usize {
            return Err(WireError::Truncated);
        }
        buf[0..2].copy_from_slice(&self.src_port.to_be_bytes());
        buf[2..4].copy_from_slice(&self.dst_port.to_be_bytes());
        buf[4..6].copy_from_slice(&(len as u16).to_be_bytes());
        buf[6..8].copy_from_slice(&[0, 0]);
        let mut acc = checksum::pseudo_header(src, dst, 17, len as u16);
        acc += checksum::sum(&buf[..len]);
        let mut c = checksum::finish(acc);
        if c == 0 {
            c = 0xffff; // RFC 768: transmitted zero means "no checksum"
        }
        buf[6..8].copy_from_slice(&c.to_be_bytes());
        Ok(len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs() -> (Ipv4Addr, Ipv4Addr) {
        (Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2))
    }

    #[test]
    fn round_trip() {
        let (src, dst) = addrs();
        let repr = Repr {
            src_port: 5004,
            dst_port: 5006,
        };
        let mut buf = vec![0u8; HEADER_LEN + 4];
        buf[HEADER_LEN..].copy_from_slice(b"voip");
        let n = repr.emit(&mut buf, 4, src, dst).unwrap();
        assert_eq!(n, 12);
        let (parsed, payload) = Repr::parse(&buf, src, dst).unwrap();
        assert_eq!(parsed, repr);
        assert_eq!(payload, b"voip");
    }

    #[test]
    fn checksum_catches_payload_corruption() {
        let (src, dst) = addrs();
        let repr = Repr {
            src_port: 1,
            dst_port: 2,
        };
        let mut buf = vec![0u8; HEADER_LEN + 4];
        repr.emit(&mut buf, 4, src, dst).unwrap();
        buf[HEADER_LEN + 1] ^= 0xff;
        assert_eq!(Repr::parse(&buf, src, dst), Err(WireError::BadChecksum));
    }

    #[test]
    fn checksum_covers_pseudo_header() {
        let (src, dst) = addrs();
        let repr = Repr {
            src_port: 1,
            dst_port: 2,
        };
        let mut buf = vec![0u8; HEADER_LEN];
        repr.emit(&mut buf, 0, src, dst).unwrap();
        // Same bytes, different claimed protocol endpoint address family
        // member → checksum must fail.
        let other = Ipv4Addr::new(10, 9, 9, 9);
        assert_eq!(Repr::parse(&buf, src, other), Err(WireError::BadChecksum));
    }

    #[test]
    fn zero_checksum_is_accepted_as_absent() {
        let (src, dst) = addrs();
        let mut buf = vec![0u8; HEADER_LEN];
        buf[0..2].copy_from_slice(&99u16.to_be_bytes());
        buf[2..4].copy_from_slice(&100u16.to_be_bytes());
        buf[4..6].copy_from_slice(&(HEADER_LEN as u16).to_be_bytes());
        let (parsed, _) = Repr::parse(&buf, src, dst).unwrap();
        assert_eq!(parsed.src_port, 99);
    }

    #[test]
    fn length_field_validated() {
        let (src, dst) = addrs();
        let mut buf = vec![0u8; HEADER_LEN];
        buf[4..6].copy_from_slice(&4u16.to_be_bytes()); // < HEADER_LEN
        assert_eq!(Repr::parse(&buf, src, dst), Err(WireError::Truncated));
        buf[4..6].copy_from_slice(&64u16.to_be_bytes()); // > buffer
        assert_eq!(Repr::parse(&buf, src, dst), Err(WireError::Truncated));
    }
}
