//! The simulation's packet descriptor.
//!
//! Scheduler behaviour depends only on packet *metadata* (size, ports,
//! class, timestamps), so the simulator moves descriptors rather than
//! payload bytes — the standard technique for packet-level switch
//! simulation at millions of packets per run. The wire-level view needed by
//! classifier tests lives in [`crate::wire`].

use xds_sim::SimTime;

use crate::types::{PortNo, TrafficClass};

/// Globally unique packet identifier within one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PacketId(pub u64);

/// A packet descriptor as carried through hosts, VOQs, the OCS and the EPS.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Packet {
    /// Unique id (for tracing and invariant checks).
    pub id: PacketId,
    /// Flow this packet belongs to.
    pub flow: u64,
    /// Source port / host.
    pub src: PortNo,
    /// Destination port / host.
    pub dst: PortNo,
    /// Wire size in bytes, headers included.
    pub bytes: u32,
    /// Class assigned by the classifier.
    pub class: TrafficClass,
    /// When the application produced the packet.
    pub created: SimTime,
    /// Sequence number within the flow (0-based).
    pub seq: u32,
}

impl Packet {
    /// Convenience constructor used by generators and tests.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: u64,
        flow: u64,
        src: PortNo,
        dst: PortNo,
        bytes: u32,
        class: TrafficClass,
        created: SimTime,
        seq: u32,
    ) -> Self {
        Packet {
            id: PacketId(id),
            flow,
            src,
            dst,
            bytes,
            class,
            created,
            seq,
        }
    }

    /// Latency accumulated between creation and `now`.
    pub fn age_at(&self, now: SimTime) -> xds_sim::SimDuration {
        now.saturating_since(self.created)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xds_sim::SimDuration;

    #[test]
    fn age_is_measured_from_creation() {
        let p = Packet::new(
            1,
            9,
            PortNo(0),
            PortNo(3),
            1500,
            TrafficClass::Bulk,
            SimTime::from_nanos(100),
            0,
        );
        assert_eq!(
            p.age_at(SimTime::from_nanos(350)),
            SimDuration::from_nanos(250)
        );
        // Clock skew can make "now" earlier than creation; age saturates.
        assert_eq!(p.age_at(SimTime::from_nanos(50)), SimDuration::ZERO);
    }

    #[test]
    fn descriptor_is_compact() {
        // The simulator moves millions of these; keep the descriptor within
        // a cache line.
        assert!(std::mem::size_of::<Packet>() <= 64);
    }
}
