//! # xds-net — packets, headers and classification
//!
//! The paper's *processing logic* "classifies packets into flows based on
//! configurable look-up rules and places them into their respective Virtual
//! Output Queue". This crate provides everything up to the VOQ:
//!
//! * [`Packet`] — the simulation's packet descriptor (metadata, not
//!   payload bytes: the scheduler never looks at payloads);
//! * [`wire`] — smoltcp-style typed header `Repr`s with `parse`/`emit`
//!   for Ethernet II, IPv4, UDP and TCP, so look-up rules can be exercised
//!   against real header bytes (and the classifier unit-tested on frames it
//!   would see on a NetFPGA port);
//! * [`FiveTuple`] and [`classify`] — a TCAM-like priority rule table with
//!   prefix, range and exact matchers, plus a longest-prefix-match trie;
//! * [`types`] — port numbers, traffic classes and protocol identifiers
//!   shared across the workspace.

#![warn(missing_docs)]

pub mod classify;
pub mod fivetuple;
pub mod packet;
pub mod types;
pub mod wire;

pub use classify::{Action, LpmTable, Rule, RuleMatch, RuleTable};
pub use fivetuple::FiveTuple;
pub use packet::{Packet, PacketId};
pub use types::{IpProtocol, PortNo, TrafficClass};
pub use wire::{Ipv4Addr, MacAddr, WireError};
