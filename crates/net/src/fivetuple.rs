//! The classic 5-tuple flow key, extractable from raw frames.

use crate::types::IpProtocol;
use crate::wire::{ethernet, ipv4, tcp, udp, EtherType, Ipv4Addr, WireError};

/// `(src ip, dst ip, src port, dst port, protocol)` — the flow key the
/// paper's look-up rules operate on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FiveTuple {
    /// Source IPv4 address.
    pub src: Ipv4Addr,
    /// Destination IPv4 address.
    pub dst: Ipv4Addr,
    /// Source transport port (0 for port-less protocols).
    pub src_port: u16,
    /// Destination transport port (0 for port-less protocols).
    pub dst_port: u16,
    /// Transport protocol.
    pub proto: IpProtocol,
}

impl FiveTuple {
    /// Extracts the 5-tuple from a full Ethernet frame. Non-IPv4 frames are
    /// reported as [`WireError::Unsupported`]; port-less protocols yield
    /// zero ports.
    pub fn from_frame(frame: &[u8]) -> Result<FiveTuple, WireError> {
        let (eth, l3) = ethernet::Repr::parse(frame)?;
        match eth.ethertype {
            EtherType::Ipv4 => {}
            other => return Err(WireError::Unsupported(other.to_u16())),
        }
        let (ip, l4) = ipv4::Repr::parse(l3)?;
        let (src_port, dst_port) = match ip.protocol {
            IpProtocol::Udp => {
                let (u, _) = udp::Repr::parse(l4, ip.src, ip.dst)?;
                (u.src_port, u.dst_port)
            }
            IpProtocol::Tcp => {
                let (t, _) = tcp::Repr::parse(l4, ip.src, ip.dst)?;
                (t.src_port, t.dst_port)
            }
            _ => (0, 0),
        };
        Ok(FiveTuple {
            src: ip.src,
            dst: ip.dst,
            src_port,
            dst_port,
            proto: ip.protocol,
        })
    }

    /// The reverse-direction tuple (for matching return traffic).
    pub fn reversed(self) -> FiveTuple {
        FiveTuple {
            src: self.dst,
            dst: self.src,
            src_port: self.dst_port,
            dst_port: self.src_port,
            proto: self.proto,
        }
    }
}

impl core::fmt::Display for FiveTuple {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{}:{} -> {}:{} ({})",
            self.src,
            self.src_port,
            self.dst,
            self.dst_port,
            self.proto.to_byte()
        )
    }
}

/// Builds a complete Ethernet/IPv4/UDP frame for tests and examples; returns
/// the frame bytes.
pub fn build_udp_frame(
    src_host: u16,
    dst_host: u16,
    src_port: u16,
    dst_port: u16,
    payload: &[u8],
) -> Vec<u8> {
    use crate::wire::MacAddr;
    let src_ip = Ipv4Addr::for_host(src_host);
    let dst_ip = Ipv4Addr::for_host(dst_host);
    let udp_len = udp::HEADER_LEN + payload.len();
    let total = ethernet::HEADER_LEN + ipv4::HEADER_LEN + udp_len;
    let mut frame = vec![0u8; total];
    ethernet::Repr {
        dst: MacAddr::for_host(dst_host),
        src: MacAddr::for_host(src_host),
        ethertype: EtherType::Ipv4,
    }
    .emit(&mut frame)
    .expect("sized buffer");
    ipv4::Repr {
        src: src_ip,
        dst: dst_ip,
        protocol: IpProtocol::Udp,
        payload_len: udp_len as u16,
        ttl: 64,
        dscp: 0,
    }
    .emit(&mut frame[ethernet::HEADER_LEN..])
    .expect("sized buffer");
    let l4 = &mut frame[ethernet::HEADER_LEN + ipv4::HEADER_LEN..];
    l4[udp::HEADER_LEN..].copy_from_slice(payload);
    udp::Repr { src_port, dst_port }
        .emit(l4, payload.len(), src_ip, dst_ip)
        .expect("sized buffer");
    frame
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_udp_five_tuple_from_frame() {
        let frame = build_udp_frame(1, 2, 5004, 5006, b"rtp payload");
        let ft = FiveTuple::from_frame(&frame).unwrap();
        assert_eq!(ft.src, Ipv4Addr::for_host(1));
        assert_eq!(ft.dst, Ipv4Addr::for_host(2));
        assert_eq!(ft.src_port, 5004);
        assert_eq!(ft.dst_port, 5006);
        assert_eq!(ft.proto, IpProtocol::Udp);
    }

    #[test]
    fn non_ip_frames_are_unsupported() {
        let mut frame = build_udp_frame(1, 2, 1, 1, b"");
        frame[12..14].copy_from_slice(&0x0806u16.to_be_bytes()); // ARP
        assert_eq!(
            FiveTuple::from_frame(&frame),
            Err(WireError::Unsupported(0x0806))
        );
    }

    #[test]
    fn corrupt_frame_is_rejected_not_misread() {
        let mut frame = build_udp_frame(1, 2, 5004, 5006, b"x");
        // Flip a bit in the IP destination — checksum must catch it before
        // the classifier ever sees a wrong tuple.
        frame[ethernet::HEADER_LEN + 16] ^= 0x01;
        assert!(FiveTuple::from_frame(&frame).is_err());
    }

    #[test]
    fn reversed_swaps_endpoints() {
        let frame = build_udp_frame(3, 4, 1000, 2000, b"");
        let ft = FiveTuple::from_frame(&frame).unwrap();
        let rev = ft.reversed();
        assert_eq!(rev.src, ft.dst);
        assert_eq!(rev.dst_port, ft.src_port);
        assert_eq!(rev.reversed(), ft);
    }

    #[test]
    fn display_is_informative() {
        let frame = build_udp_frame(1, 2, 7, 8, b"");
        let ft = FiveTuple::from_frame(&frame).unwrap();
        assert_eq!(ft.to_string(), "10.0.0.1:7 -> 10.0.0.2:8 (17)");
    }
}
