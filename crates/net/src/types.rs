//! Shared identifier and enum types.

use core::fmt;

/// A switch port (equivalently, the host attached to it: the testbed is a
/// single ToR whose port *i* connects host *i*).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PortNo(pub u16);

impl PortNo {
    /// The port as a matrix index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<usize> for PortNo {
    fn from(i: usize) -> Self {
        assert!(i <= u16::MAX as usize, "port index {i} out of range");
        PortNo(i as u16)
    }
}

impl fmt::Display for PortNo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Traffic class assigned by the classifier; drives the EPS/OCS mapping.
///
/// The paper: "the OCS is used to serve long bursts of traffic and the EPS
/// is used to serve the remaining traffic and short bursts."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TrafficClass {
    /// Interactive, latency-critical packets (VOIP, gaming). Always EPS, at
    /// the highest priority.
    Interactive,
    /// Short flows / residual traffic. EPS.
    #[default]
    Short,
    /// Long bursts / elephants. OCS candidates, buffered in VOQs until
    /// granted.
    Bulk,
}

impl TrafficClass {
    /// All classes, highest priority first.
    pub const ALL: [TrafficClass; 3] = [
        TrafficClass::Interactive,
        TrafficClass::Short,
        TrafficClass::Bulk,
    ];

    /// Short label for tables.
    pub fn label(self) -> &'static str {
        match self {
            TrafficClass::Interactive => "interactive",
            TrafficClass::Short => "short",
            TrafficClass::Bulk => "bulk",
        }
    }

    /// Whether this class is a circuit (OCS) candidate.
    pub fn is_circuit_candidate(self) -> bool {
        matches!(self, TrafficClass::Bulk)
    }
}

/// IP protocol numbers the classifier understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IpProtocol {
    /// TCP (6).
    Tcp,
    /// UDP (17).
    Udp,
    /// ICMP (1).
    Icmp,
    /// Anything else, by protocol number.
    Other(u8),
}

impl IpProtocol {
    /// Parses from the IPv4 protocol field.
    pub fn from_byte(b: u8) -> IpProtocol {
        match b {
            1 => IpProtocol::Icmp,
            6 => IpProtocol::Tcp,
            17 => IpProtocol::Udp,
            other => IpProtocol::Other(other),
        }
    }

    /// The wire value.
    pub fn to_byte(self) -> u8 {
        match self {
            IpProtocol::Icmp => 1,
            IpProtocol::Tcp => 6,
            IpProtocol::Udp => 17,
            IpProtocol::Other(b) => b,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn port_round_trip() {
        let p = PortNo::from(7usize);
        assert_eq!(p.index(), 7);
        assert_eq!(p.to_string(), "p7");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_port_panics() {
        let _ = PortNo::from(70_000usize);
    }

    #[test]
    fn class_priorities_and_candidates() {
        assert!(TrafficClass::Bulk.is_circuit_candidate());
        assert!(!TrafficClass::Interactive.is_circuit_candidate());
        assert!(!TrafficClass::Short.is_circuit_candidate());
        assert_eq!(TrafficClass::ALL[0], TrafficClass::Interactive);
    }

    #[test]
    fn protocol_bytes_round_trip() {
        for b in [0u8, 1, 6, 17, 89, 255] {
            assert_eq!(IpProtocol::from_byte(b).to_byte(), b);
        }
        assert_eq!(IpProtocol::from_byte(6), IpProtocol::Tcp);
        assert_eq!(IpProtocol::from_byte(17), IpProtocol::Udp);
    }
}
